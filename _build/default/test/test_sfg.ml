(* Tests for the signal-flow-graph compiler: graph construction rules, the
   software reference interpreter, and compiled-chemistry equivalence. *)

let fresh () =
  let net = Crn.Network.create () in
  (net, Core.Sync_design.make net)

(* ------------------------------------------------- construction rules *)

let test_gain_validation () =
  let _, d = fresh () in
  let g = Core.Sfg.create d ~name:"g" in
  let x = Core.Sfg.input g in
  Alcotest.check_raises "negative num"
    (Invalid_argument "Sfg.gain: negative numerator") (fun () ->
      ignore (Core.Sfg.gain g ~num:(-1) ~den:1 x));
  Alcotest.check_raises "den not power of two"
    (Invalid_argument "Sfg.gain: denominator must be a positive power of two")
    (fun () -> ignore (Core.Sfg.gain g ~num:1 ~den:3 x));
  Alcotest.check_raises "den zero"
    (Invalid_argument "Sfg.gain: denominator must be a positive power of two")
    (fun () -> ignore (Core.Sfg.gain g ~num:1 ~den:0 x))

let test_add_needs_two () =
  let _, d = fresh () in
  let g = Core.Sfg.create d ~name:"g" in
  let x = Core.Sfg.input g in
  Alcotest.check_raises "one operand"
    (Invalid_argument "Sfg.add: need at least two operands") (fun () ->
      ignore (Core.Sfg.add g [ x ]))

let test_compile_requires_output () =
  let _, d = fresh () in
  let g = Core.Sfg.create d ~name:"g" in
  let _ = Core.Sfg.input g in
  Alcotest.check_raises "no outputs"
    (Invalid_argument "Sfg.compile: no outputs declared") (fun () ->
      ignore (Core.Sfg.compile g))

let test_unresolved_forward_rejected () =
  let _, d = fresh () in
  let g = Core.Sfg.create d ~name:"g" in
  let f = Core.Sfg.forward g in
  Core.Sfg.output g f;
  Alcotest.check_raises "unresolved"
    (Invalid_argument "Sfg.compile: unresolved forward wire") (fun () ->
      ignore (Core.Sfg.compile g))

let test_define_validation () =
  let _, d = fresh () in
  let g = Core.Sfg.create d ~name:"g" in
  let x = Core.Sfg.input g in
  let f = Core.Sfg.forward g in
  Alcotest.check_raises "not a forward"
    (Invalid_argument "Sfg.define: not a forward wire") (fun () ->
      Core.Sfg.define g x x);
  Core.Sfg.define g f x;
  Alcotest.check_raises "double define"
    (Invalid_argument "Sfg.define: forward already defined") (fun () ->
      Core.Sfg.define g f x)

let test_algebraic_loop_rejected () =
  (* y = x + y/2 with no delay in the loop *)
  let _, d = fresh () in
  let g = Core.Sfg.create d ~name:"g" in
  let x = Core.Sfg.input g in
  let f = Core.Sfg.forward g in
  let y = Core.Sfg.add g [ x; Core.Sfg.gain g ~num:1 ~den:2 f ] in
  Core.Sfg.define g f y;
  Core.Sfg.output g y;
  Alcotest.check_raises "algebraic loop"
    (Invalid_argument "Sfg.compile: algebraic loop (feedback without a delay)")
    (fun () -> ignore (Core.Sfg.compile g))

let test_compile_once () =
  let _, d = fresh () in
  let g = Core.Sfg.create d ~name:"g" in
  let x = Core.Sfg.input g in
  Core.Sfg.output g x;
  let _ = Core.Sfg.compile g in
  Alcotest.check_raises "second compile"
    (Invalid_argument "Sfg.compile: graph already compiled") (fun () ->
      ignore (Core.Sfg.compile g))

(* --------------------------------------------- reference interpreter *)

let test_reference_moving_average () =
  let _, d = fresh () in
  let g = Core.Sfg.create d ~name:"g" in
  let x = Core.Sfg.input g in
  let xd = Core.Sfg.delay g x in
  let y = Core.Sfg.gain g ~num:1 ~den:2 (Core.Sfg.add g [ x; xd ]) in
  Core.Sfg.output g y;
  let stream = [ 8.; 4.; 0.; 6. ] in
  let got = List.hd (Core.Sfg.reference g [ stream ]) in
  let want = Core.Filter.reference_moving_average ~taps:2 stream in
  Alcotest.(check (list (float 1e-9))) "matches Filter's model" want got

let test_reference_iir () =
  let _, d = fresh () in
  let g = Core.Sfg.create d ~name:"g" in
  let x = Core.Sfg.input g in
  let f = Core.Sfg.forward g in
  let yd = Core.Sfg.delay g f in
  let y = Core.Sfg.gain g ~num:1 ~den:2 (Core.Sfg.add g [ x; yd ]) in
  Core.Sfg.define g f y;
  Core.Sfg.output g y;
  let stream = [ 8.; 8.; 8.; 0. ] in
  let got = List.hd (Core.Sfg.reference g [ stream ]) in
  let want = Core.Filter.reference_iir stream in
  Alcotest.(check (list (float 1e-9))) "matches IIR recurrence" want got

let test_reference_multi_io () =
  (* two inputs, two outputs: y0 = a + b, y1 = 2 (a delayed) *)
  let _, d = fresh () in
  let g = Core.Sfg.create d ~name:"g" in
  let a = Core.Sfg.input g in
  let b = Core.Sfg.input g in
  Core.Sfg.output g (Core.Sfg.add g [ a; b ]);
  Core.Sfg.output g (Core.Sfg.gain g ~num:2 ~den:1 (Core.Sfg.delay g a));
  let got = Core.Sfg.reference g [ [ 1.; 2. ]; [ 10.; 20. ] ] in
  Alcotest.(check (list (list (float 1e-9))))
    "both outputs"
    [ [ 11.; 22. ]; [ 0.; 2. ] ]
    got

let test_reference_stream_validation () =
  let _, d = fresh () in
  let g = Core.Sfg.create d ~name:"g" in
  let x = Core.Sfg.input g in
  Core.Sfg.output g x;
  Alcotest.check_raises "stream count"
    (Invalid_argument "Sfg.reference: stream count mismatch") (fun () ->
      ignore (Core.Sfg.reference g []))

(* ------------------------------------------------ compiled chemistry *)

let check_close tol got want =
  List.iter2
    (fun g w ->
      if Float.abs (g -. w) > tol then
        Alcotest.failf "got %g want %g (tol %g)" g w tol)
    got want

let test_compiled_matches_reference_fir () =
  let _, d = fresh () in
  let g = Core.Sfg.create d ~name:"fir" in
  let x = Core.Sfg.input g in
  let xd = Core.Sfg.delay g x in
  let xdd = Core.Sfg.delay g xd in
  (* y = x/2 + x[n-1]/4 + x[n-2]/4 *)
  let y =
    Core.Sfg.add g
      [
        Core.Sfg.gain g ~num:1 ~den:2 x;
        Core.Sfg.gain g ~num:1 ~den:4 xd;
        Core.Sfg.gain g ~num:1 ~den:4 xdd;
      ]
  in
  Core.Sfg.output g y;
  let c = Core.Sfg.compile g in
  let stream = [ 8.; 0.; 8.; 4. ] in
  let got = List.hd (Core.Sfg.response c [ stream ]) in
  let want = List.hd (Core.Sfg.reference g [ stream ]) in
  check_close 0.25 got want

let test_compiled_biquad () =
  let _, d = fresh () in
  let g =
    Core.Sfg.biquad d ~b0:(1, 2) ~b1:(1, 4) ~b2:(1, 8) ~a1:(1, 4) ~a2:(1, 8)
  in
  let c = Core.Sfg.compile g in
  let stream = [ 8.; 8.; 8.; 0.; 0.; 0. ] in
  let got = List.hd (Core.Sfg.response c [ stream ]) in
  let want = List.hd (Core.Sfg.reference g [ stream ]) in
  (* feedback compounds the per-cycle trickle; 3% of the ~10 peak *)
  check_close 0.35 got want

let test_compiled_fanout_gain () =
  (* one wire consumed three times, with an integer gain *)
  let _, d = fresh () in
  let g = Core.Sfg.create d ~name:"fan" in
  let x = Core.Sfg.input g in
  let y = Core.Sfg.add g [ x; x; Core.Sfg.gain g ~num:3 ~den:1 x ] in
  Core.Sfg.output g y;
  let c = Core.Sfg.compile g in
  let got = List.hd (Core.Sfg.response c [ [ 2.; 4. ] ]) in
  (* y = x + x + 3x = 5x, within the ~1.5% clock trickle *)
  check_close 0.45 got [ 10.; 20. ]

let test_compiled_gain_zero_sink () =
  let _, d = fresh () in
  let g = Core.Sfg.create d ~name:"sink" in
  let x = Core.Sfg.input g in
  let y = Core.Sfg.add g [ x; Core.Sfg.gain g ~num:0 ~den:1 x ] in
  Core.Sfg.output g y;
  let c = Core.Sfg.compile g in
  let got = List.hd (Core.Sfg.response c [ [ 6. ] ]) in
  check_close 0.2 got [ 6. ]

(* -------------------------------------------------- frequency response *)

let test_estimate_gain_pure_sine () =
  let omega = Float.pi /. 5. in
  let samples =
    List.init 60 (fun n -> 4. +. (2.5 *. sin (omega *. float_of_int n)))
  in
  Alcotest.(check (float 0.05)) "recovers amplitude" 2.5
    (Core.Freq_response.estimate_gain ~omega ~skip:10 samples)

let test_biquad_theory_dc_and_nyquist () =
  (* at omega=0: H = (b0+b1+b2)/(1-a1-a2); with all = 1/2,1/4,1/8,1/4,1/8:
     (0.875)/(0.625) = 1.4 *)
  let b0 = (1, 2) and b1 = (1, 4) and b2 = (1, 8) and a1 = (1, 4) and a2 = (1, 8) in
  Alcotest.(check (float 1e-9)) "DC gain" 1.4
    (Core.Freq_response.biquad_theory ~b0 ~b1 ~b2 ~a1 ~a2 ~omega:0.);
  (* at omega=pi: (b0-b1+b2)/(1+a1-a2) = 0.375/1.125 *)
  Alcotest.(check (float 1e-9)) "Nyquist gain" (0.375 /. 1.125)
    (Core.Freq_response.biquad_theory ~b0 ~b1 ~b2 ~a1 ~a2 ~omega:Float.pi)

let test_measured_gain_tracks_theory () =
  let net = Crn.Network.create () in
  let d = Core.Sync_design.make net in
  ignore net;
  let b0 = (1, 2) and b1 = (1, 4) and b2 = (1, 8) and a1 = (1, 4) and a2 = (1, 8) in
  let g = Core.Sfg.biquad d ~b0 ~b1 ~b2 ~a1 ~a2 in
  let c = Core.Sfg.compile g in
  let omega = Float.pi /. 4. in
  let p = Core.Freq_response.measure c ~omega in
  let theory = Core.Freq_response.biquad_theory ~b0 ~b1 ~b2 ~a1 ~a2 ~omega in
  Alcotest.(check (float 0.02)) "golden estimator matches closed form" theory
    p.Core.Freq_response.ideal;
  Alcotest.(check (float 0.05)) "chemistry tracks theory" theory
    p.Core.Freq_response.measured

let suite =
  [
    ("gain validation", `Quick, test_gain_validation);
    ("add needs two", `Quick, test_add_needs_two);
    ("compile requires output", `Quick, test_compile_requires_output);
    ("unresolved forward", `Quick, test_unresolved_forward_rejected);
    ("define validation", `Quick, test_define_validation);
    ("algebraic loop rejected", `Quick, test_algebraic_loop_rejected);
    ("compile once", `Quick, test_compile_once);
    ("reference: moving average", `Quick, test_reference_moving_average);
    ("reference: iir", `Quick, test_reference_iir);
    ("reference: multi io", `Quick, test_reference_multi_io);
    ("reference: stream validation", `Quick, test_reference_stream_validation);
    ("compiled fir matches reference", `Quick, test_compiled_matches_reference_fir);
    ("compiled biquad", `Quick, test_compiled_biquad);
    ("compiled fanout + gain", `Quick, test_compiled_fanout_gain);
    ("compiled gain-zero sink", `Quick, test_compiled_gain_zero_sink);
    ("estimate gain on sine", `Quick, test_estimate_gain_pure_sine);
    ("biquad theory endpoints", `Quick, test_biquad_theory_dc_and_nyquist);
    ("measured gain tracks theory", `Slow, test_measured_gain_tracks_theory);
  ]
