(* Tests for the rate-independent combinational module library. Each module
   is built standalone (slow production / fast annihilation), simulated to
   (near) steady state, and its output compared with the ideal value. *)

open Crn

let build f =
  let net = Network.create () in
  let b = Builder.on net in
  let handle = f b in
  (net, b, handle)

let settle ?(t1 = 40.) net = Ode.Driver.final_state ~t1 net

let value net state name =
  match Network.find_species net name with
  | Some s -> state.(s)
  | None -> Alcotest.failf "unknown species %s" name

let check_value ?(tol = 1e-3) net state name expected =
  let v = value net state name in
  if Float.abs (v -. expected) > tol *. Float.max 1. (Float.abs expected) then
    Alcotest.failf "%s: expected %g, got %g" name expected v

(* ----------------------------------------------------------------- Arith *)

let test_transfer () =
  let net, b, _ =
    build (fun b ->
        let x = Builder.species b "X" in
        Builder.init b x 12.;
        Ri_modules.Arith.transfer b ~name:"t" x)
  in
  ignore b;
  let s = settle net in
  check_value net s "t.out" 12.;
  check_value net s "X" 0.

let test_add () =
  let net, _, _ =
    build (fun b ->
        let x1 = Builder.species b "X1" and x2 = Builder.species b "X2" in
        Builder.init b x1 7.;
        Builder.init b x2 5.;
        Ri_modules.Arith.add b ~name:"a" x1 x2)
  in
  check_value net (settle net) "a.out" 12.

let test_sum () =
  let net, _, _ =
    build (fun b ->
        let xs =
          List.map
            (fun (n, v) ->
              let s = Builder.species b n in
              Builder.init b s v;
              s)
            [ ("X1", 1.); ("X2", 2.); ("X3", 3.); ("X4", 4.) ]
        in
        Ri_modules.Arith.sum b ~name:"s" xs)
  in
  check_value net (settle net) "s.out" 10.

let test_sub_positive () =
  let net, _, _ =
    build (fun b ->
        let x1 = Builder.species b "X1" and x2 = Builder.species b "X2" in
        Builder.init b x1 9.;
        Builder.init b x2 4.;
        Ri_modules.Arith.sub b ~name:"d" x1 x2)
  in
  check_value ~tol:5e-3 net (settle net) "d.out" 5.

let test_sub_clamps_at_zero () =
  let net, _, _ =
    build (fun b ->
        let x1 = Builder.species b "X1" and x2 = Builder.species b "X2" in
        Builder.init b x1 4.;
        Builder.init b x2 9.;
        Ri_modules.Arith.sub b ~name:"d" x1 x2)
  in
  check_value ~tol:5e-3 net (settle net) "d.out" 0.

let test_min () =
  let net, _, _ =
    build (fun b ->
        let x1 = Builder.species b "X1" and x2 = Builder.species b "X2" in
        Builder.init b x1 9.;
        Builder.init b x2 4.;
        Ri_modules.Arith.min_of b ~name:"m" x1 x2)
  in
  let s = settle net in
  check_value ~tol:5e-3 net s "m.out" 4.;
  (* the larger operand's residue remains *)
  check_value ~tol:5e-3 net s "X1" 5.

let test_max () =
  let net, _, _ =
    build (fun b ->
        let x1 = Builder.species b "X1" and x2 = Builder.species b "X2" in
        Builder.init b x1 3.;
        Builder.init b x2 11.;
        Ri_modules.Arith.max_of b ~name:"mx" x1 x2)
  in
  check_value ~tol:1e-2 net (settle ~t1:80. net) "mx.out" 11.

let test_max_equal_inputs () =
  let net, _, _ =
    build (fun b ->
        let x1 = Builder.species b "X1" and x2 = Builder.species b "X2" in
        Builder.init b x1 6.;
        Builder.init b x2 6.;
        Ri_modules.Arith.max_of b ~name:"mx" x1 x2)
  in
  check_value ~tol:1e-2 net (settle ~t1:80. net) "mx.out" 6.

let test_scale () =
  let net, _, _ =
    build (fun b ->
        let x = Builder.species b "X" in
        Builder.init b x 12.;
        Ri_modules.Arith.scale b ~name:"s" ~num:3 ~den:2 x)
  in
  (* 12 * 3/2 = 18; bimolecular drain has an algebraic tail, so allow 1% *)
  check_value ~tol:1e-2 net (settle ~t1:100. net) "s.out" 18.

let test_halve_double () =
  let net, _, _ =
    build (fun b ->
        let x = Builder.species b "X" and y = Builder.species b "Y" in
        Builder.init b x 10.;
        Builder.init b y 10.;
        let h = Ri_modules.Arith.halve b ~name:"h" x in
        let d = Ri_modules.Arith.double b ~name:"d" y in
        (h, d))
  in
  let s = settle ~t1:100. net in
  check_value ~tol:1e-2 net s "h.out" 5.;
  check_value ~tol:1e-3 net s "d.out" 20.

let test_fanout () =
  let net, _, outs =
    build (fun b ->
        let x = Builder.species b "X" in
        Builder.init b x 8.;
        Ri_modules.Arith.fanout b ~name:"f" ~copies:3 x)
  in
  Alcotest.(check int) "three outputs" 3 (List.length outs);
  let s = settle net in
  check_value net s "f.out0" 8.;
  check_value net s "f.out1" 8.;
  check_value net s "f.out2" 8.

let test_arith_invalid () =
  let net = Network.create () in
  let b = Builder.on net in
  let x = Builder.species b "X" in
  Alcotest.check_raises "bad scale"
    (Invalid_argument "Arith.scale: num and den must be >= 1") (fun () ->
      ignore (Ri_modules.Arith.scale b ~name:"s" ~num:0 ~den:1 x));
  Alcotest.check_raises "bad fanout"
    (Invalid_argument "Arith.fanout: copies must be >= 1") (fun () ->
      ignore (Ri_modules.Arith.fanout b ~name:"f" ~copies:0 x));
  Alcotest.check_raises "empty sum" (Invalid_argument "Arith.sum: no inputs")
    (fun () -> ignore (Ri_modules.Arith.sum b ~name:"s" []))

(* --------------------------------------------------------------- Compare *)

let test_compare_greater () =
  let net, _, r =
    build (fun b ->
        let x1 = Builder.species b "X1" and x2 = Builder.species b "X2" in
        Builder.init b x1 9.;
        Builder.init b x2 4.;
        Ri_modules.Compare.compare b ~name:"c" x1 x2)
  in
  let s = settle net in
  ignore r;
  check_value ~tol:5e-3 net s "c.gt" 5.;
  check_value ~tol:5e-3 net s "c.lt" 0.

let test_compare_less () =
  let net, _, _ =
    build (fun b ->
        let x1 = Builder.species b "X1" and x2 = Builder.species b "X2" in
        Builder.init b x1 2.;
        Builder.init b x2 10.;
        Ri_modules.Compare.compare b ~name:"c" x1 x2)
  in
  let s = settle net in
  check_value ~tol:5e-3 net s "c.gt" 0.;
  check_value ~tol:5e-3 net s "c.lt" 8.

let test_threshold () =
  let net, _, _ =
    build (fun b ->
        let x = Builder.species b "X" in
        Builder.init b x 12.;
        Ri_modules.Compare.threshold b ~name:"th" ~level:10. x)
  in
  let s = settle net in
  check_value ~tol:5e-3 net s "th.gt" 2.;
  check_value ~tol:5e-3 net s "th.lt" 0.

let test_threshold_invalid () =
  let net = Network.create () in
  let b = Builder.on net in
  let x = Builder.species b "X" in
  Alcotest.check_raises "negative level"
    (Invalid_argument "Compare.threshold: negative level") (fun () ->
      ignore (Ri_modules.Compare.threshold b ~name:"t" ~level:(-1.) x))

let test_equal_indicator () =
  (* equal inputs: both residues empty, the indicator accumulates *)
  let net, _, _ =
    build (fun b ->
        let x1 = Builder.species b "X1" and x2 = Builder.species b "X2" in
        Builder.init b x1 6.;
        Builder.init b x2 6.;
        let r = Ri_modules.Compare.compare b ~name:"c" x1 x2 in
        Ri_modules.Compare.equal_indicator b ~name:"c" r)
  in
  let s = settle ~t1:30. net in
  Alcotest.(check bool) "indicator grows when equal" true
    (value net s "c.eq" > 1.);
  (* unequal inputs: residue suppresses the indicator *)
  let net2, _, _ =
    build (fun b ->
        let x1 = Builder.species b "X1" and x2 = Builder.species b "X2" in
        Builder.init b x1 9.;
        Builder.init b x2 6.;
        let r = Ri_modules.Compare.compare b ~name:"c" x1 x2 in
        Ri_modules.Compare.equal_indicator b ~name:"c" r)
  in
  let s2 = settle ~t1:30. net2 in
  Alcotest.(check bool) "indicator suppressed when unequal" true
    (value net2 s2 "c.eq" < 0.1)

(* --------------------------------------------------------------- Absence *)

let test_absence_indicator () =
  (* watched species present: the indicator is held near k_slow/(k_fast S) *)
  let net, _, _ =
    build (fun b ->
        let s = Builder.species b "S" in
        Builder.init b s 10.;
        Ri_modules.Absence.indicator b ~name:"i" ~watched:[ s ])
  in
  let x = settle ~t1:10. net in
  Alcotest.(check bool) "suppressed while S present" true
    (value net x "i" < 0.01)

let test_absence_indicator_accumulates () =
  let net, _, _ =
    build (fun b ->
        let s = Builder.species b "S" in
        (* S starts at zero: indicator accumulates at the slow rate *)
        Ri_modules.Absence.indicator b ~name:"i" ~watched:[ s ])
  in
  let x = settle ~t1:10. net in
  Alcotest.(check (float 0.2)) "~ k_slow * t" 10. (value net x "i")

let test_absence_gate_orders_transfer () =
  (* the gated transfer X -> Y must not proceed while the watched species W
     is present, and proceeds once W has drained *)
  let net, _, _ =
    build (fun b ->
        let w = Builder.species b "W" in
        let x = Builder.species b "X" in
        let y = Builder.species b "Y" in
        Builder.init b w 10.;
        Builder.init b x 10.;
        (* W drains away slowly on its own *)
        Builder.decay b Rates.slow w;
        let i = Ri_modules.Absence.indicator b ~name:"i" ~watched:[ w ] in
        Ri_modules.Absence.gate b ~indicator:i x y;
        (x, y))
  in
  (* early: W still present, transfer blocked *)
  let early = Ode.Driver.final_state ~t1:1. net in
  Alcotest.(check bool) "blocked while W present" true
    (value net early "Y" < 0.2);
  (* late: W gone, transfer completed *)
  let late = Ode.Driver.final_state ~t1:60. net in
  Alcotest.(check bool) "completed after W absent" true
    (value net late "Y" > 9.5)

let test_absence_empty_watchlist () =
  let net = Network.create () in
  let b = Builder.on net in
  Alcotest.check_raises "empty watch list"
    (Invalid_argument "Absence.indicator: empty watch list") (fun () ->
      ignore (Ri_modules.Absence.indicator b ~name:"i" ~watched:[]))

(* ------------------------------------------------- rate independence *)

let test_rate_independence_of_sub () =
  (* the defining claim: results do not depend on the specific rates, only
     on the categories; sweep the separation ratio *)
  List.iter
    (fun ratio ->
      let net, _, _ =
        build (fun b ->
            let x1 = Builder.species b "X1" and x2 = Builder.species b "X2" in
            Builder.init b x1 9.;
            Builder.init b x2 4.;
            Ri_modules.Arith.sub b ~name:"d" x1 x2)
      in
      let env = Rates.env_with_ratio ratio in
      let s = Ode.Driver.final_state ~env ~t1:60. net in
      let v = value net s "d.out" in
      if Float.abs (v -. 5.) > 0.2 then
        Alcotest.failf "ratio %g: expected 5, got %g" ratio v)
    [ 10.; 100.; 1000.; 10000. ]

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"add computes x1 + x2 for random inputs" ~count:20
      (make Gen.(pair (float_range 0.5 30.) (float_range 0.5 30.)))
      (fun (v1, v2) ->
        let net, _, _ =
          build (fun b ->
              let x1 = Builder.species b "X1" and x2 = Builder.species b "X2" in
              Builder.init b x1 v1;
              Builder.init b x2 v2;
              Ri_modules.Arith.add b ~name:"a" x1 x2)
        in
        let s = settle net in
        Float.abs (value net s "a.out" -. (v1 +. v2)) < 1e-2 *. (v1 +. v2));
    Test.make ~name:"sub computes max(0, x1 - x2) for random inputs"
      ~count:20
      (make Gen.(pair (float_range 0.5 30.) (float_range 0.5 30.)))
      (fun (v1, v2) ->
        let net, _, _ =
          build (fun b ->
              let x1 = Builder.species b "X1" and x2 = Builder.species b "X2" in
              Builder.init b x1 v1;
              Builder.init b x2 v2;
              Ri_modules.Arith.sub b ~name:"d" x1 x2)
        in
        let s = settle ~t1:60. net in
        let expected = Float.max 0. (v1 -. v2) in
        Float.abs (value net s "d.out" -. expected)
        < 0.02 *. Float.max 1. (v1 +. v2));
    Test.make ~name:"min pairs down to the smaller operand" ~count:20
      (make Gen.(pair (float_range 0.5 30.) (float_range 0.5 30.)))
      (fun (v1, v2) ->
        let net, _, _ =
          build (fun b ->
              let x1 = Builder.species b "X1" and x2 = Builder.species b "X2" in
              Builder.init b x1 v1;
              Builder.init b x2 v2;
              Ri_modules.Arith.min_of b ~name:"m" x1 x2)
        in
        let s = settle ~t1:60. net in
        Float.abs (value net s "m.out" -. Float.min v1 v2)
        < 0.02 *. Float.max 1. (Float.min v1 v2));
  ]

let suite =
  [
    ("transfer", `Quick, test_transfer);
    ("add", `Quick, test_add);
    ("sum", `Quick, test_sum);
    ("sub positive", `Quick, test_sub_positive);
    ("sub clamps", `Quick, test_sub_clamps_at_zero);
    ("min", `Quick, test_min);
    ("max", `Quick, test_max);
    ("max equal", `Quick, test_max_equal_inputs);
    ("scale", `Quick, test_scale);
    ("halve double", `Quick, test_halve_double);
    ("fanout", `Quick, test_fanout);
    ("arith invalid", `Quick, test_arith_invalid);
    ("compare greater", `Quick, test_compare_greater);
    ("compare less", `Quick, test_compare_less);
    ("threshold", `Quick, test_threshold);
    ("threshold invalid", `Quick, test_threshold_invalid);
    ("equal indicator", `Quick, test_equal_indicator);
    ("absence suppressed", `Quick, test_absence_indicator);
    ("absence accumulates", `Quick, test_absence_indicator_accumulates);
    ("absence gate orders transfer", `Quick, test_absence_gate_orders_transfer);
    ("absence empty watchlist", `Quick, test_absence_empty_watchlist);
    ("rate independence of sub", `Slow, test_rate_independence_of_sub);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests
