(* Tests for the asynchronous (self-timed) delay-chain scheme of the
   companion abstract. *)

let test_chain_structure () =
  let net = Crn.Network.create () in
  let b = Crn.Builder.on net in
  let c = Async_mol.Delay_chain.make ~input:40. b ~n:2 in
  Alcotest.(check string) "input is B0" "B0" (Async_mol.Delay_chain.x_name c);
  Alcotest.(check string) "output is R3" "R3" (Async_mol.Delay_chain.y_name c);
  (* 3 reds + 2 greens + 3 blues = 8 signal species *)
  Alcotest.(check int) "signal species" 8
    (List.length (Async_mol.Delay_chain.species_names c));
  (* exactly three absence indicators regardless of n *)
  List.iter
    (fun name ->
      Alcotest.(check bool) name true (Crn.Network.find_species net name <> None))
    [ "r"; "g"; "b" ];
  Alcotest.(check (float 0.)) "input preset" 40.
    (Crn.Network.init_of net (Crn.Network.species net "B0"))

let test_indicator_count_constant () =
  (* "there are only these three absence indicators regardless of the
     number of delay elements" — the zero-order sources count the
     indicators *)
  let sources n =
    let net = Crn.Network.create () in
    let b = Crn.Builder.on net in
    let _ = Async_mol.Delay_chain.make b ~n in
    Array.fold_left
      (fun acc r -> if Crn.Reaction.order r = 0 then acc + 1 else acc)
      0 (Crn.Network.reactions net)
  in
  Alcotest.(check int) "n=1" 3 (sources 1);
  Alcotest.(check int) "n=4" 3 (sources 4)

let test_chain_conservative () =
  let net = Crn.Network.create () in
  let b = Crn.Builder.on net in
  let c = Async_mol.Delay_chain.make ~input:10. b ~n:3 in
  Alcotest.(check bool) "signal mass conserved" true
    (Async_mol.Delay_chain.is_conservative c)

let test_transfer_completes () =
  (* the headline behaviour: X ripples to Y, undiminished *)
  let trace, chain = Async_mol.Delay_chain.simulate ~input:80. ~t1:60. ~n:2 () in
  let final_y =
    Async_mol.Delay_chain.output_total chain trace (Ode.Trace.last_time trace)
  in
  Alcotest.(check (float 2.)) "Y receives the input" 80. final_y;
  match Async_mol.Delay_chain.completion_time ~frac:0.95 chain trace with
  | None -> Alcotest.fail "never completed"
  | Some t -> Alcotest.(check bool) "completes well before horizon" true (t < 40.)

let test_transfer_is_ordered () =
  (* adjacent color categories legitimately co-exist during a handover, but
     phases two steps apart must not: by the time any blue appears, the red
     of the same wave must have completely drained *)
  let trace, _chain = Async_mol.Delay_chain.simulate ~input:50. ~t1:40. ~n:1 () in
  let r1 = Ode.Trace.column_named trace "R1" in
  let b1 = Ode.Trace.column_named trace "B1" in
  let worst_copresence = ref 0. in
  Array.iteri
    (fun i r -> worst_copresence := Float.max !worst_copresence (Float.min r b1.(i)))
    r1;
  Alcotest.(check bool) "R1/B1 nearly disjoint" true (!worst_copresence < 2.)

let test_longer_chain_takes_longer () =
  let t_of n =
    let trace, chain =
      Async_mol.Delay_chain.simulate ~input:50. ~t1:150. ~n ()
    in
    match Async_mol.Delay_chain.completion_time ~frac:0.9 chain trace with
    | Some t -> t
    | None -> Alcotest.failf "chain n=%d never completed" n
  in
  let t2 = t_of 2 and t4 = t_of 4 in
  Alcotest.(check bool) "4 elements slower than 2" true (t4 > t2 *. 1.3)

let test_feedback_ablation_less_crisp () =
  (* without the positive-feedback reactions the transfer still happens
     (the handshake alone is enough) but takes longer to complete *)
  let run feedback =
    let net = Crn.Network.create () in
    let b = Crn.Builder.on net in
    let chain = Async_mol.Delay_chain.make ~feedback ~input:50. b ~n:1 in
    let trace =
      Ode.Driver.simulate ~method_:Ode.Driver.Rosenbrock ~thin:5 ~t1:120. net
    in
    Async_mol.Delay_chain.completion_time ~frac:0.9 chain trace
  in
  match (run true, run false) with
  | Some with_fb, Some without_fb ->
      Alcotest.(check bool) "feedback accelerates completion" true
        (with_fb < without_fb)
  | Some _, None -> () (* even stronger: never completes in the horizon *)
  | None, _ -> Alcotest.fail "chain with feedback failed to complete"

let test_rate_ratio_robustness () =
  (* the transfer result is independent of the specific rates *)
  List.iter
    (fun ratio ->
      let env = Crn.Rates.env_with_ratio ratio in
      let trace, chain =
        Async_mol.Delay_chain.simulate ~env ~input:60. ~t1:80. ~n:2 ()
      in
      let y =
        Async_mol.Delay_chain.output_total chain trace
          (Ode.Trace.last_time trace)
      in
      if Float.abs (y -. 60.) > 6. then
        Alcotest.failf "ratio %g: Y = %g, expected 60" ratio y)
    [ 100.; 1000.; 10000. ]

let test_invalid_args () =
  let net = Crn.Network.create () in
  let b = Crn.Builder.on net in
  Alcotest.check_raises "n = 0"
    (Invalid_argument "Delay_chain.make: need at least one element")
    (fun () -> ignore (Async_mol.Delay_chain.make b ~n:0));
  Alcotest.check_raises "negative input"
    (Invalid_argument "Delay_chain.make: negative input") (fun () ->
      ignore (Async_mol.Delay_chain.make ~input:(-1.) b ~n:1))

let suite =
  [
    ("chain structure", `Quick, test_chain_structure);
    ("three indicators always", `Quick, test_indicator_count_constant);
    ("chain conservative", `Quick, test_chain_conservative);
    ("transfer completes", `Quick, test_transfer_completes);
    ("transfer ordered", `Quick, test_transfer_is_ordered);
    ("longer chain slower", `Slow, test_longer_chain_takes_longer);
    ("feedback ablation", `Slow, test_feedback_ablation_less_crisp);
    ("rate ratio robustness", `Slow, test_rate_ratio_robustness);
    ("invalid args", `Quick, test_invalid_args);
  ]
