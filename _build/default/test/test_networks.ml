(* Integration tests over the shipped .crn example networks: the parser,
   the simulators and the analysis layer against classic chemistry. *)

let path name = Filename.concat "../examples/networks" name

let load name = Crn.Parser.network_of_file (path name)

let test_parse_all () =
  List.iter
    (fun name ->
      let net = load name in
      Alcotest.(check bool)
        (name ^ " nonempty")
        true
        (Crn.Network.n_reactions net > 0);
      (* and they roundtrip through the printer *)
      let net' = Crn.Parser.roundtrip net in
      Alcotest.(check string)
        (name ^ " roundtrips")
        (Crn.Network.to_string net)
        (Crn.Network.to_string net'))
    [
      "oregonator.crn";
      "lotka_volterra.crn";
      "approximate_majority.crn";
      "brusselator.crn";
    ]

let test_lotka_volterra_oscillates () =
  let net = load "lotka_volterra.crn" in
  let trace = Ode.Driver.simulate ~t1:40. net in
  let times = Ode.Trace.times trace in
  let x = Ode.Trace.column_named trace "X" in
  Alcotest.(check bool) "prey oscillates" true
    (Analysis.Oscillation.is_sustained ~threshold:1. ~min_cycles:4 ~times
       ~values:x ());
  (* Lotka-Volterra conserves nothing linear, but stays positive & bounded *)
  Alcotest.(check bool) "bounded" true (Numeric.Stats.maximum x < 50.)

let test_oregonator_oscillates () =
  let net = load "oregonator.crn" in
  let trace = Ode.Driver.simulate ~t1:40. net in
  let times = Ode.Trace.times trace in
  (* X cycles repeatedly; Z has one giant start-up spike, so judge the
     sustained oscillation on X and only the relaxation amplitude on Z *)
  let x = Ode.Trace.column_named trace "X" in
  Alcotest.(check bool) "X oscillates" true
    (Analysis.Oscillation.is_sustained
       ~threshold:(Numeric.Stats.maximum x /. 2.)
       ~min_cycles:4 ~times ~values:x ());
  let z = Ode.Trace.column_named trace "Z" in
  Alcotest.(check bool) "Z relaxation amplitude" true
    (Analysis.Oscillation.amplitude ~values:z > 50.)

let test_brusselator_limit_cycle () =
  let net = load "brusselator.crn" in
  let trace = Ode.Driver.simulate ~t1:80. net in
  let times = Ode.Trace.times trace in
  let x = Ode.Trace.column_named trace "X" in
  (* judge sustained oscillation on the second half (past the transient) *)
  Alcotest.(check bool) "X oscillates" true
    (Analysis.Oscillation.is_sustained ~threshold:1.5 ~min_cycles:4 ~times
       ~values:x ());
  (* the classic network is trimolecular: not DSD-compilable, and the lint
     pass says so *)
  Alcotest.(check bool) "trimolecular flagged" false
    (Crn.Validate.is_dsd_compilable net)

let test_approximate_majority_converges () =
  let net = load "approximate_majority.crn" in
  (* deterministic: initial majority X=60 vs Y=40 takes the population *)
  let xf = Ode.Driver.final_state ~t1:5. net in
  let sp name = Crn.Network.species net name in
  Alcotest.(check (float 0.5)) "X wins all 100" 100. xf.(sp "X");
  Alcotest.(check (float 0.5)) "Y extinct" 0. xf.(sp "Y");
  (* stochastic: strong majority wins almost surely *)
  let mean, _ = Ssa.Gillespie.mean_final ~runs:8 ~seed:11L ~t1:5. net "X" in
  Alcotest.(check bool) "SSA majority outcome" true (mean > 90.)

let test_majority_conserves_population () =
  let net = load "approximate_majority.crn" in
  let w = Crn.Conservation.uniform_over net [ "X"; "Y"; "B" ] in
  Alcotest.(check bool) "X+Y+B invariant" true
    (Crn.Conservation.is_invariant net w)

let suite =
  [
    ("parse + roundtrip all", `Quick, test_parse_all);
    ("lotka-volterra oscillates", `Quick, test_lotka_volterra_oscillates);
    ("oregonator oscillates", `Quick, test_oregonator_oscillates);
    ("brusselator limit cycle", `Quick, test_brusselator_limit_cycle);
    ("approximate majority converges", `Quick, test_approximate_majority_converges);
    ("majority conserves population", `Quick, test_majority_conserves_population);
  ]
