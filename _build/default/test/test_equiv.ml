(* Tests for structural network equivalence (isomorphism up to species
   renaming). *)

open Crn

let simple ?(init = 5.) names arrows =
  let net = Network.create () in
  List.iter (fun n -> ignore (Network.species net n)) names;
  (match names with
  | first :: _ -> Network.set_init net (Network.species net first) init
  | [] -> ());
  List.iter
    (fun (a, b) ->
      Network.add_reaction net
        (Reaction.make
           ~reactants:[ (Network.species net a, 1) ]
           ~products:[ (Network.species net b, 1) ]
           Rates.slow))
    arrows;
  net

let test_identical_networks () =
  let n1 = simple [ "A"; "B"; "C" ] [ ("A", "B"); ("B", "C") ] in
  let n2 = simple [ "A"; "B"; "C" ] [ ("A", "B"); ("B", "C") ] in
  Alcotest.(check bool) "isomorphic" true (Equiv.isomorphic n1 n2);
  Alcotest.(check string) "same fingerprint" (Equiv.fingerprint n1)
    (Equiv.fingerprint n2)

let test_renamed_network () =
  let n1 = simple [ "A"; "B"; "C" ] [ ("A", "B"); ("B", "C") ] in
  let n2 = simple [ "x"; "y"; "z" ] [ ("x", "y"); ("y", "z") ] in
  Alcotest.(check bool) "renaming is invisible" true (Equiv.isomorphic n1 n2);
  Alcotest.(check string) "fingerprint invariant" (Equiv.fingerprint n1)
    (Equiv.fingerprint n2)

let test_different_topology () =
  (* chain A->B->C vs fork A->B, A->C *)
  let n1 = simple [ "A"; "B"; "C" ] [ ("A", "B"); ("B", "C") ] in
  let n2 = simple [ "A"; "B"; "C" ] [ ("A", "B"); ("A", "C") ] in
  Alcotest.(check bool) "chain != fork" false (Equiv.isomorphic n1 n2);
  Alcotest.(check bool) "fingerprints differ" true
    (Equiv.fingerprint n1 <> Equiv.fingerprint n2)

let test_different_rates () =
  let mk rate =
    let net = Network.create () in
    let a = Network.species net "A" and b = Network.species net "B" in
    Network.set_init net a 3.;
    Network.add_reaction net
      (Reaction.make ~reactants:[ (a, 1) ] ~products:[ (b, 1) ] rate);
    net
  in
  Alcotest.(check bool) "category matters" false
    (Equiv.isomorphic (mk Rates.slow) (mk Rates.fast));
  Alcotest.(check bool) "scale matters" false
    (Equiv.isomorphic (mk Rates.slow) (mk (Rates.slow_scaled 2.)))

let test_different_inits () =
  let n1 = simple ~init:5. [ "A"; "B" ] [ ("A", "B") ] in
  let n2 = simple ~init:6. [ "A"; "B" ] [ ("A", "B") ] in
  Alcotest.(check bool) "initial conditions matter" false
    (Equiv.isomorphic n1 n2)

let test_symmetric_network () =
  (* two independent identical blocks force the individualization search *)
  let mk order =
    let net = Network.create () in
    let add (a, b) =
      let sa = Network.species net a and sb = Network.species net b in
      Network.set_init net sa 2.;
      Network.add_reaction net
        (Reaction.make ~reactants:[ (sa, 1) ] ~products:[ (sb, 1) ] Rates.slow)
    in
    List.iter add order;
    net
  in
  let n1 = mk [ ("A1", "B1"); ("A2", "B2") ] in
  let n2 = mk [ ("P", "Q"); ("R", "S") ] in
  Alcotest.(check bool) "symmetric blocks match" true (Equiv.isomorphic n1 n2)

let test_symmetric_vs_crossed () =
  (* two parallel arrows vs a shared-target fork: same counts, different
     structure; both have total symmetry in the sources *)
  let net1 = Network.create () in
  let a1 = Network.species net1 "A1" and a2 = Network.species net1 "A2" in
  let b1 = Network.species net1 "B1" and b2 = Network.species net1 "B2" in
  Network.set_init net1 a1 2.;
  Network.set_init net1 a2 2.;
  List.iter
    (fun (x, y) ->
      Network.add_reaction net1
        (Reaction.make ~reactants:[ (x, 1) ] ~products:[ (y, 1) ] Rates.slow))
    [ (a1, b1); (a2, b2) ];
  let net2 = Network.create () in
  let c1 = Network.species net2 "C1" and c2 = Network.species net2 "C2" in
  let d = Network.species net2 "D" in
  let _e = Network.species net2 "E" in
  Network.set_init net2 c1 2.;
  Network.set_init net2 c2 2.;
  List.iter
    (fun (x, y) ->
      Network.add_reaction net2
        (Reaction.make ~reactants:[ (x, 1) ] ~products:[ (y, 1) ] Rates.slow))
    [ (c1, d); (c2, d) ];
  Alcotest.(check bool) "parallel != shared target" false
    (Equiv.isomorphic net1 net2)

let test_synthesis_deterministic () =
  (* two independent synthesis runs of the same design are isomorphic (in
     fact identical up to generated names) *)
  let build () = Designs.Catalog.build "counter2" in
  let n1 = build () and n2 = build () in
  Alcotest.(check string) "fingerprints equal" (Equiv.fingerprint n1)
    (Equiv.fingerprint n2);
  Alcotest.(check bool) "isomorphic" true (Equiv.isomorphic n1 n2)

let test_different_designs_not_isomorphic () =
  let c2 = Designs.Catalog.build "counter2" in
  let l3 = Designs.Catalog.build "lfsr3" in
  Alcotest.(check bool) "counter != lfsr" false (Equiv.isomorphic c2 l3)

let test_size_mismatch_fast_path () =
  let n1 = simple [ "A"; "B" ] [ ("A", "B") ] in
  let n2 = simple [ "A"; "B"; "C" ] [ ("A", "B") ] in
  Alcotest.(check bool) "species count differs" false (Equiv.isomorphic n1 n2)

let qcheck_tests =
  let open QCheck in
  (* a random network, then a random species permutation of it: always
     isomorphic *)
  let gen =
    Gen.(
      let* n = int_range 2 6 in
      let* arrows =
        list_size (int_range 1 8) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      in
      let* inits = list_size (return n) (int_range 0 3) in
      let* seed = int_range 0 1000000 in
      return (n, arrows, inits, seed))
  in
  [
    Test.make ~name:"any species permutation is isomorphic" ~count:40
      (make gen)
      (fun (n, arrows, inits, seed) ->
        let build names =
          let net = Network.create () in
          List.iter (fun nm -> ignore (Network.species net nm)) names;
          List.iteri
            (fun i v ->
              Network.set_init net
                (Network.species net (List.nth names i))
                (float_of_int v))
            inits;
          List.iter
            (fun (a, b) ->
              Network.add_reaction net
                (Reaction.make
                   ~reactants:[ (Network.species net (List.nth names a), 1) ]
                   ~products:[ (Network.species net (List.nth names b), 1) ]
                   Rates.slow))
            arrows;
          net
        in
        let base = List.init n (fun i -> Printf.sprintf "s%d" i) in
        (* deterministic pseudo-random permutation from the seed *)
        let rng = Numeric.Rng.create (Int64.of_int seed) in
        let arr = Array.of_list base in
        for i = Array.length arr - 1 downto 1 do
          let j = Numeric.Rng.int rng (i + 1) in
          let t = arr.(i) in
          arr.(i) <- arr.(j);
          arr.(j) <- t
        done;
        let renamed = List.init n (fun i -> "p." ^ arr.(i)) in
        Equiv.isomorphic (build base) (build renamed));
  ]

let suite =
  [
    ("identical networks", `Quick, test_identical_networks);
    ("renamed network", `Quick, test_renamed_network);
    ("different topology", `Quick, test_different_topology);
    ("different rates", `Quick, test_different_rates);
    ("different inits", `Quick, test_different_inits);
    ("symmetric network", `Quick, test_symmetric_network);
    ("symmetric vs crossed", `Quick, test_symmetric_vs_crossed);
    ("synthesis deterministic", `Quick, test_synthesis_deterministic);
    ("different designs", `Quick, test_different_designs_not_isomorphic);
    ("size mismatch", `Quick, test_size_mismatch_fast_path);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests
