(* Unit and property tests for the numeric substrate. *)

open Numeric

let check_float = Alcotest.(check (float 1e-9))
let check_float_loose eps = Alcotest.(check (float eps))

(* ------------------------------------------------------------------ Vec *)

let test_vec_basic () =
  let v = Vec.init 4 (fun i -> float_of_int i) in
  check_float "sum" 6. (Vec.sum v);
  check_float "dot" 14. (Vec.dot v v);
  check_float "norm2" (sqrt 14.) (Vec.norm2 v);
  check_float "norm_inf" 3. (Vec.norm_inf v);
  Alcotest.(check int) "argmax" 3 (Vec.argmax v);
  check_float "max" 3. (Vec.max_elt v);
  check_float "min" 0. (Vec.min_elt v)

let test_vec_ops () =
  let a = [| 1.; 2.; 3. |] and b = [| 10.; 20.; 30. |] in
  Alcotest.(check (array (float 1e-12)))
    "add" [| 11.; 22.; 33. |] (Vec.add a b);
  Alcotest.(check (array (float 1e-12)))
    "sub" [| 9.; 18.; 27. |] (Vec.sub b a);
  Alcotest.(check (array (float 1e-12)))
    "scale" [| 2.; 4.; 6. |] (Vec.scale 2. a);
  let y = Array.copy b in
  Vec.axpy 2. a y;
  Alcotest.(check (array (float 1e-12))) "axpy" [| 12.; 24.; 36. |] y;
  check_float "dist_inf" 27. (Vec.dist_inf a b)

let test_vec_clamp () =
  let v = [| -1e-12; 2.; -3.; 0. |] in
  Vec.clamp_nonneg v;
  Alcotest.(check (array (float 0.))) "clamped" [| 0.; 2.; 0.; 0. |] v

let test_vec_dim_mismatch () =
  Alcotest.check_raises "add mismatch"
    (Invalid_argument "Vec: dimension mismatch") (fun () ->
      ignore (Vec.add [| 1. |] [| 1.; 2. |]))

let test_vec_empty () =
  Alcotest.check_raises "max of empty" (Invalid_argument "Vec: empty vector")
    (fun () -> ignore (Vec.max_elt [||]))

(* ------------------------------------------------------------------ Mat *)

let test_mat_identity () =
  let i3 = Mat.identity 3 in
  let v = [| 1.; 2.; 3. |] in
  Alcotest.(check (array (float 1e-12))) "I v = v" v (Mat.mul_vec i3 v);
  Alcotest.(check bool) "I * I = I" true (Mat.equal (Mat.mul i3 i3) i3)

let test_mat_mul () =
  let a = [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let ab = Mat.mul a b in
  Alcotest.(check bool) "swap columns" true
    (Mat.equal ab [| [| 2.; 1. |]; [| 4.; 3. |] |])

let test_mat_transpose () =
  let a = Mat.init 2 3 (fun i j -> float_of_int ((10 * i) + j)) in
  let t = Mat.transpose a in
  Alcotest.(check (pair int int)) "dims" (3, 2) (Mat.dims t);
  check_float "entry" 12. t.(2).(1)

let test_mat_norm_inf () =
  let a = [| [| 1.; -2. |]; [| 3.; 4. |] |] in
  check_float "max abs row sum" 7. (Mat.norm_inf a)

(* ------------------------------------------------------------------- Lu *)

let test_lu_solve () =
  let a = [| [| 4.; 3. |]; [| 6.; 3. |] |] in
  let b = [| 10.; 12. |] in
  let x = Lu.solve_system a b in
  (* 4x + 3y = 10, 6x + 3y = 12 -> x = 1, y = 2 *)
  check_float "x" 1. x.(0);
  check_float "y" 2. x.(1)

let test_lu_det () =
  let a = [| [| 2.; 0.; 0. |]; [| 0.; 3.; 0. |]; [| 0.; 0.; 4. |] |] in
  check_float "det diag" 24. (Lu.det (Lu.decompose a));
  let p = [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  check_float "det swap" (-1.) (Lu.det (Lu.decompose p))

let test_lu_inverse () =
  let a = [| [| 1.; 2. |]; [| 3.; 5. |] |] in
  let inv = Lu.inverse (Lu.decompose a) in
  Alcotest.(check bool) "A * A^-1 = I" true
    (Mat.equal ~eps:1e-9 (Mat.mul a inv) (Mat.identity 2))

let test_lu_singular () =
  let a = [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.check_raises "singular" Lu.Singular (fun () ->
      ignore (Lu.decompose a))

let test_lu_rank () =
  Alcotest.(check int) "full rank" 2 (Lu.rank [| [| 1.; 0. |]; [| 0.; 1. |] |]);
  Alcotest.(check int) "rank deficient" 1
    (Lu.rank [| [| 1.; 2. |]; [| 2.; 4. |] |]);
  Alcotest.(check int) "wide" 2 (Lu.rank [| [| 1.; 0.; 5. |]; [| 0.; 1.; 7. |] |])

let test_lu_nullspace () =
  (* x + y + z with S = [1 1 1] has a 2-dimensional null space *)
  let a = [| [| 1.; 1.; 1. |] |] in
  let basis = Lu.nullspace a in
  Alcotest.(check int) "dim" 2 (List.length basis);
  List.iter
    (fun v ->
      let residual = Vec.norm_inf (Mat.mul_vec a v) in
      Alcotest.(check bool) "A v = 0" true (residual < 1e-9))
    basis

let test_lu_nullspace_trivial () =
  Alcotest.(check int) "invertible has trivial null space" 0
    (List.length (Lu.nullspace [| [| 1.; 2. |]; [| 3.; 5. |] |]))

(* ------------------------------------------------------------------ Rng *)

let test_rng_determinism () =
  let a = Rng.create 7L and b = Rng.create 7L in
  for _ = 1 to 100 do
    Alcotest.(check bool) "same stream" true (Rng.uint64 a = Rng.uint64 b)
  done

let test_rng_float_range () =
  let r = Rng.create 3L in
  for _ = 1 to 1000 do
    let x = Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (x >= 0. && x < 1.)
  done

let test_rng_int_range () =
  let r = Rng.create 5L in
  for _ = 1 to 1000 do
    let x = Rng.int r 10 in
    Alcotest.(check bool) "in [0,10)" true (x >= 0 && x < 10)
  done

let test_rng_exponential_mean () =
  let r = Rng.create 11L in
  let n = 20000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Rng.exponential r 2.
  done;
  check_float_loose 0.02 "mean ~ 1/rate" 0.5 (!acc /. float_of_int n)

let test_rng_pick_weighted () =
  let r = Rng.create 13L in
  let hits = Array.make 3 0 in
  for _ = 1 to 30000 do
    let i = Rng.pick_weighted r [| 1.; 0.; 3. |] in
    hits.(i) <- hits.(i) + 1
  done;
  Alcotest.(check int) "zero weight never picked" 0 hits.(1);
  let ratio = float_of_int hits.(2) /. float_of_int hits.(0) in
  Alcotest.(check bool) "ratio ~ 3" true (ratio > 2.6 && ratio < 3.4)

let test_rng_split_independent () =
  let parent = Rng.create 17L in
  let child = Rng.split parent in
  let a = Rng.uint64 parent and b = Rng.uint64 child in
  Alcotest.(check bool) "streams differ" true (a <> b)

(* ---------------------------------------------------------------- Stats *)

let test_stats_basic () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  check_float "mean" 2.5 (Stats.mean xs);
  check_float "median even" 2.5 (Stats.median xs);
  check_float "median odd" 2. (Stats.median [| 3.; 1.; 2. |]);
  check_float "variance" (5. /. 3.) (Stats.variance xs);
  check_float "min" 1. (Stats.minimum xs);
  check_float "max" 4. (Stats.maximum xs);
  check_float "rms" (sqrt 7.5) (Stats.rms xs)

let test_stats_percentile () =
  let xs = [| 10.; 20.; 30.; 40.; 50. |] in
  check_float "p0" 10. (Stats.percentile xs 0.);
  check_float "p50" 30. (Stats.percentile xs 50.);
  check_float "p100" 50. (Stats.percentile xs 100.);
  check_float "p25" 20. (Stats.percentile xs 25.)

let test_stats_singleton () =
  check_float "variance of 1" 0. (Stats.variance [| 5. |]);
  check_float "percentile of 1" 5. (Stats.percentile [| 5. |] 75.)

(* --------------------------------------------------------------- Interp *)

let test_interp_at () =
  let times = [| 0.; 1.; 2. |] and values = [| 0.; 10.; 0. |] in
  check_float "midpoint" 5. (Interp.at ~times ~values 0.5);
  check_float "node" 10. (Interp.at ~times ~values 1.);
  check_float "before" 0. (Interp.at ~times ~values (-1.));
  check_float "after" 0. (Interp.at ~times ~values 5.)

let test_interp_grid () =
  let g = Interp.uniform_grid ~t0:0. ~t1:1. ~n:5 in
  Alcotest.(check (array (float 1e-12)))
    "grid" [| 0.; 0.25; 0.5; 0.75; 1. |] g

let test_interp_max_abs_diff () =
  let times = [| 0.; 1. |] in
  let d =
    Interp.max_abs_diff ~times_a:times ~values_a:[| 0.; 1. |] ~times_b:times
      ~values_b:[| 0.; 2. |] ~n:11
  in
  check_float "max diff at endpoint" 1. d

(* ------------------------------------------------------- property tests *)

let qcheck_tests =
  let open QCheck in
  let vec_gen n = Gen.array_size (Gen.return n) (Gen.float_bound_exclusive 100.) in
  [
    Test.make ~name:"lu: solve then multiply recovers rhs" ~count:100
      (make
         Gen.(
           let n = 3 in
           pair
             (array_size (return (n * n)) (Gen.float_range (-10.) 10.))
             (vec_gen n)))
      (fun (entries, b) ->
        let a = Mat.init 3 3 (fun i j -> entries.((3 * i) + j)) in
        (* make strictly diagonally dominant so it is invertible *)
        for i = 0 to 2 do
          a.(i).(i) <- a.(i).(i) +. 50.
        done;
        let x = Lu.solve_system a b in
        Vec.dist_inf (Mat.mul_vec a x) b < 1e-6);
    Test.make ~name:"interp: at sample nodes returns samples" ~count:100
      (make Gen.(array_size (int_range 2 20) (Gen.float_bound_exclusive 10.)))
      (fun values ->
        let times = Array.init (Array.length values) float_of_int in
        Array.for_all
          (fun i ->
            Float.abs (Interp.at ~times ~values times.(i) -. values.(i))
            < 1e-12)
          (Array.init (Array.length values) (fun i -> i)));
    Test.make ~name:"stats: mean within min..max" ~count:200
      (make Gen.(array_size (int_range 1 50) (Gen.float_range (-5.) 5.)))
      (fun xs ->
        let m = Stats.mean xs in
        m >= Stats.minimum xs -. 1e-9 && m <= Stats.maximum xs +. 1e-9);
    Test.make ~name:"vec: norm_inf of scale" ~count:200
      (make Gen.(pair (Gen.float_range (-3.) 3.) (array_size (int_range 1 20) (Gen.float_range (-10.) 10.))))
      (fun (s, v) ->
        Float.abs (Vec.norm_inf (Vec.scale s v) -. (Float.abs s *. Vec.norm_inf v))
        < 1e-9);
  ]

let suite =
  [
    ("vec basic", `Quick, test_vec_basic);
    ("vec ops", `Quick, test_vec_ops);
    ("vec clamp", `Quick, test_vec_clamp);
    ("vec dim mismatch", `Quick, test_vec_dim_mismatch);
    ("vec empty", `Quick, test_vec_empty);
    ("mat identity", `Quick, test_mat_identity);
    ("mat mul", `Quick, test_mat_mul);
    ("mat transpose", `Quick, test_mat_transpose);
    ("mat norm_inf", `Quick, test_mat_norm_inf);
    ("lu solve", `Quick, test_lu_solve);
    ("lu det", `Quick, test_lu_det);
    ("lu inverse", `Quick, test_lu_inverse);
    ("lu singular", `Quick, test_lu_singular);
    ("lu rank", `Quick, test_lu_rank);
    ("lu nullspace", `Quick, test_lu_nullspace);
    ("lu nullspace trivial", `Quick, test_lu_nullspace_trivial);
    ("rng determinism", `Quick, test_rng_determinism);
    ("rng float range", `Quick, test_rng_float_range);
    ("rng int range", `Quick, test_rng_int_range);
    ("rng exponential mean", `Quick, test_rng_exponential_mean);
    ("rng pick weighted", `Quick, test_rng_pick_weighted);
    ("rng split", `Quick, test_rng_split_independent);
    ("stats basic", `Quick, test_stats_basic);
    ("stats percentile", `Quick, test_stats_percentile);
    ("stats singleton", `Quick, test_stats_singleton);
    ("interp at", `Quick, test_interp_at);
    ("interp grid", `Quick, test_interp_grid);
    ("interp max_abs_diff", `Quick, test_interp_max_abs_diff);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests
