(* Quickstart: build a small reaction network with the builder DSL, simulate
   its deterministic mass-action kinetics, and print the trajectory.

   The network is the paper's elementary example of rate-independent
   computation: an adder. Whatever quantities X1 and X2 start with, Z ends
   with their sum — no matter what the rate constants are, because the only
   thing the reactions can do is move every unit of X1 and X2 into Z.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. build the network *)
  let net = Crn.Network.create () in
  let b = Crn.Builder.on net in
  let x1 = Crn.Builder.species b "X1" in
  let x2 = Crn.Builder.species b "X2" in
  Crn.Builder.init b x1 30.;
  Crn.Builder.init b x2 12.;
  let z = Ri_modules.Arith.add b ~name:"adder" x1 x2 in

  (* 2. print it in the textual .crn format (Crn.Parser reads this back) *)
  print_endline "Network:";
  print_endline (Crn.Network.to_string net);

  (* 3. simulate the deterministic mass-action kinetics *)
  let trace = Ode.Driver.simulate ~t1:8. net in
  Printf.printf "Simulated %d samples over %.0f time units.\n\n"
    (Ode.Trace.length trace) (Ode.Trace.last_time trace);

  (* 4. look at the result *)
  let zn = Crn.Network.species_name net z in
  print_string
    (Analysis.Ascii_plot.render ~width:64 ~height:12
       ~title:"adder: X1 + X2 -> Z"
       (Analysis.Ascii_plot.of_trace trace [ "X1"; "X2"; zn ]));
  Printf.printf "\nfinal Z = %.3f (expected 42)\n"
    (Ode.Trace.final_value trace zn);

  (* 5. the same computation is exact under any rate separation: that is
     the paper's rate-independence claim *)
  List.iter
    (fun ratio ->
      let env = Crn.Rates.env_with_ratio ratio in
      let x = Ode.Driver.final_state ~env ~t1:8. net in
      Printf.printf "k_fast/k_slow = %-6g -> Z = %.3f\n" ratio x.(z))
    [ 10.; 1000.; 100000. ];

  (* 6. and survives discrete molecular noise: Gillespie simulation *)
  let mean, std = Ssa.Gillespie.mean_final ~runs:10 ~t1:8. net (Crn.Network.species_name net z) in
  Printf.printf "stochastic (10 runs): Z = %.2f +/- %.2f\n" mean std
