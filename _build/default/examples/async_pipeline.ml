(* The companion abstract's asynchronous (self-timed) two-delay-element
   chain — a reproduction of its Figure 1(c): the quantity presented as X
   ripples through the red/green/blue color categories, ordered by the
   three global absence indicators, and accumulates undiminished in Y.

   Run with: dune exec examples/async_pipeline.exe *)

let () =
  let input = 80. in
  let trace, chain =
    Async_mol.Delay_chain.simulate ~input ~t1:50. ~n:2 ()
  in

  print_string
    (Analysis.Ascii_plot.render ~width:72 ~height:14
       ~title:
         (Printf.sprintf
            "two-delay-element chain: X (=B0) -> ... -> Y (=R3), input %.0f"
            input)
       (Analysis.Ascii_plot.of_trace trace [ "B0"; "G1"; "B1"; "G2"; "R3" ]));

  let y_final =
    Async_mol.Delay_chain.output_total chain trace (Ode.Trace.last_time trace)
  in
  Printf.printf "\nfinal Y: %.2f of %.0f injected (%.1f%% delivered)\n" y_final
    input
    (100. *. y_final /. input);

  (match Async_mol.Delay_chain.completion_time ~frac:0.95 chain trace with
  | Some t -> Printf.printf "95%% of the signal arrived by t = %.2f\n" t
  | None -> print_endline "transfer did not complete in the horizon");

  (* the transfer characteristics are independent of the specific rates *)
  print_endline "\nrate-independence sweep (k_slow fixed at 1):";
  List.iter
    (fun ratio ->
      let env = Crn.Rates.env_with_ratio ratio in
      let tr, ch = Async_mol.Delay_chain.simulate ~env ~input ~t1:80. ~n:2 () in
      let y = Async_mol.Delay_chain.output_total ch tr (Ode.Trace.last_time tr) in
      Printf.printf "  k_fast = %-8g -> Y = %6.2f\n" ratio y)
    [ 100.; 1000.; 10000. ]
