examples/lfsr_demo.mli:
