examples/biquad_demo.mli:
