examples/dsd_demo.mli:
