examples/moving_average_demo.ml: Core Crn Float List Printf
