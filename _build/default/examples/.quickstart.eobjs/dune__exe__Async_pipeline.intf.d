examples/async_pipeline.mli:
