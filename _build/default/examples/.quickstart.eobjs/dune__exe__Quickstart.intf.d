examples/quickstart.mli:
