examples/quickstart.ml: Analysis Array Crn List Ode Printf Ri_modules Ssa
