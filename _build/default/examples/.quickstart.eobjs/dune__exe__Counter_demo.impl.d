examples/counter_demo.ml: Analysis Core Crn Molclock Printf
