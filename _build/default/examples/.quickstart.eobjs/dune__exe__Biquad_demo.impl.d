examples/biquad_demo.ml: Core Crn Float List Printf
