examples/lfsr_demo.ml: Analysis Core Crn List Printf
