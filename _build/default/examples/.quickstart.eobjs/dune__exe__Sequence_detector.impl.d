examples/sequence_detector.ml: Core Crn List Ode Printf
