examples/async_pipeline.ml: Analysis Async_mol Crn List Ode Printf
