examples/dsd_demo.ml: Array Crn Dsd Format List Ode Printf Ri_modules
