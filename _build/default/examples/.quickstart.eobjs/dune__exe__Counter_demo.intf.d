examples/counter_demo.mli:
