examples/moving_average_demo.mli:
