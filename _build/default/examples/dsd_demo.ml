(* DNA strand displacement as the experimental chassis: compile a formal
   reaction network into the two-step buffered-gate scheme (Soloveichik,
   Seelig & Winfree, PNAS 2010), check the behavioural equivalence by
   simulation, and show the domain-level inventory a wet lab would order.

   Run with: dune exec examples/dsd_demo.exe *)

let () =
  (* the formal network: a rate-independent subtractor *)
  let net = Crn.Network.create () in
  let b = Crn.Builder.on net in
  let x1 = Crn.Builder.species b "X1" and x2 = Crn.Builder.species b "X2" in
  Crn.Builder.init b x1 9.;
  Crn.Builder.init b x2 4.;
  let z = Ri_modules.Arith.sub b ~name:"sub" x1 x2 in

  print_endline "Formal network (computes Z = max(0, X1 - X2)):";
  print_endline (Crn.Network.to_string net);

  (* compile to strand displacement *)
  let t = Dsd.Translate.translate ~c_max:10_000. net in
  Printf.printf "Compiled: %d species / %d reactions (from %d / %d formal)\n"
    (Crn.Network.n_species t.Dsd.Translate.compiled)
    (Crn.Network.n_reactions t.Dsd.Translate.compiled)
    (Crn.Network.n_species net)
    (Crn.Network.n_reactions net);

  (* verify *)
  let r = Dsd.Verify.compare ~t1:30. net t in
  Printf.printf
    "Equivalence: max deviation %.4f (on %s), final deviation %.4f, fuel \
     remaining %.1f%%\n\n"
    r.Dsd.Verify.max_abs_deviation r.Dsd.Verify.worst_species
    r.Dsd.Verify.final_deviation
    (100. *. r.Dsd.Verify.fuel_remaining);

  let zf =
    Ode.Driver.final_state ~method_:Ode.Driver.Rosenbrock ~t1:30.
      t.Dsd.Translate.compiled
  in
  Printf.printf "Compiled Z = %.3f (formal ideal 5)\n\n"
    zf.(Crn.Network.species t.Dsd.Translate.compiled
          (Crn.Network.species_name net z));

  (* the inventory of strands and complexes *)
  print_endline "Domain-level inventory:";
  let inv = Dsd.Translate.inventory t in
  List.iter
    (fun c -> Format.printf "  %a@." Dsd.Domain.pp_complex c)
    inv;
  Printf.printf "\n%d complexes, %d distinct domains\n" (List.length inv)
    (List.length (Dsd.Domain.distinct_domains inv))
