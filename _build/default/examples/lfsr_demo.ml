(* A three-bit maximal-length linear-feedback shift register, built
   structurally from delay elements plus a molecular XOR gate — pseudo-random
   sequence generation with chemistry.

   Feedback polynomial x^3 + x^2 + 1 (taps on bits 1 and 2); the register
   walks all seven nonzero states before repeating.

   Run with: dune exec examples/lfsr_demo.exe *)

let () =
  let net = Crn.Network.create () in
  let design = Core.Sync_design.make net in
  let lfsr = Core.Lfsr.make design ~bits:3 ~taps:[ 1; 2 ] ~seed:1 in

  Printf.printf "Synthesized a 3-bit LFSR: %d species, %d reactions\n\n"
    (Crn.Network.n_species net)
    (Crn.Network.n_reactions net);

  let cycles = 8 in
  let trace = Core.Sync_design.simulate ~cycles:(cycles + 1) design in
  let golden = Core.Lfsr.reference ~bits:3 ~taps:[ 1; 2 ] ~seed:1 ~n:cycles in

  print_endline "cycle | chemistry | golden model";
  List.iteri
    (fun c want ->
      let got = Core.Lfsr.state_at lfsr trace ~cycle:c in
      Printf.printf "%5d | %9d | %6d %s\n" c got want
        (if got = want then "" else "  <-- MISMATCH"))
    golden;

  print_newline ();
  print_string
    (Analysis.Ascii_plot.render ~width:72 ~height:10
       ~title:"register bit stores"
       (Analysis.Ascii_plot.of_trace trace (Core.Lfsr.state_names lfsr)))
