(* Discrete-time signal processing with molecular reactions: a two-tap
   moving-average filter, the workload the group's synthesis-flow papers
   target.

   y[n] = (x[n] + x[n-1]) / 2

   Input samples are injected once per clock cycle; the previous sample is
   held in a delay element (latch); division by two is the reaction
   2X -> Y; the result is registered and read out once per cycle.

   Run with: dune exec examples/moving_average_demo.exe *)

let () =
  let net = Crn.Network.create () in
  let design = Core.Sync_design.make net in
  let filter = Core.Filter.moving_average design ~taps:2 in

  Printf.printf "Synthesized a 2-tap moving-average filter: %d species, %d reactions\n\n"
    (Crn.Network.n_species net)
    (Crn.Network.n_reactions net);

  (* a noisy square wave *)
  let samples = [ 8.; 7.; 9.; 8.; 1.; 0.; 2.; 1.; 8.; 9. ] in
  let got = Core.Filter.response filter samples in
  let ideal = Core.Filter.reference_moving_average ~taps:2 samples in

  print_endline " n | x[n] | y[n] measured | y[n] ideal | error";
  List.iteri
    (fun n x ->
      let g = List.nth got n and w = List.nth ideal n in
      Printf.printf "%2d | %4.1f | %13.3f | %10.3f | %+.3f\n" n x g w (g -. w))
    samples;

  let worst =
    List.fold_left2
      (fun acc g w -> Float.max acc (Float.abs (g -. w)))
      0. got ideal
  in
  Printf.printf "\nworst absolute error: %.3f (full scale 9)\n" worst;

  (* the first-order IIR smoother exercises a feedback loop through the
     delay element: y[n] = (x[n] + y[n-1]) / 2 *)
  let net2 = Crn.Network.create () in
  let design2 = Core.Sync_design.make net2 in
  let iir = Core.Filter.iir_smoother design2 in
  let step = [ 8.; 8.; 8.; 8.; 8.; 0.; 0.; 0. ] in
  let got2 = Core.Filter.response iir step in
  let ideal2 = Core.Filter.reference_iir step in
  print_endline "\nIIR smoother step response:";
  print_endline " n | x[n] | y[n] measured | y[n] ideal";
  List.iteri
    (fun n x ->
      Printf.printf "%2d | %4.1f | %13.3f | %10.3f\n" n x (List.nth got2 n)
        (List.nth ideal2 n))
    step
