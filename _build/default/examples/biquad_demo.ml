(* The signal-flow-graph compiler: build a second-order (biquad) IIR filter
   as dataflow, compile it to clocked molecular reactions, and compare the
   chemistry against the graph's own golden interpreter and the analytic
   transfer function.

   Run with: dune exec examples/biquad_demo.exe *)

let () =
  let net = Crn.Network.create () in
  let design = Core.Sync_design.make net in
  let b0 = (1, 2) and b1 = (1, 4) and b2 = (1, 8) in
  let a1 = (1, 4) and a2 = (1, 8) in
  let graph = Core.Sfg.biquad design ~b0 ~b1 ~b2 ~a1 ~a2 in
  let compiled = Core.Sfg.compile graph in

  Printf.printf
    "y(n) = x(n)/2 + x(n-1)/4 + x(n-2)/8 + y(n-1)/4 + y(n-2)/8\n";
  Printf.printf "compiled to %d species / %d reactions\n\n"
    (Crn.Network.n_species net)
    (Crn.Network.n_reactions net);

  (* impulse-ish response *)
  let stream = [ 8.; 0.; 0.; 0.; 0.; 0. ] in
  let got = List.hd (Core.Sfg.response compiled [ stream ]) in
  let want = List.hd (Core.Sfg.reference graph [ stream ]) in
  print_endline "impulse response (x = 8, 0, 0, ...):";
  print_endline " n | chemistry | golden model";
  List.iteri
    (fun n g -> Printf.printf "%2d | %9.3f | %9.3f\n" n g (List.nth want n))
    got;

  (* one point of the frequency response *)
  let omega = Float.pi /. 4. in
  let p = Core.Freq_response.measure compiled ~omega in
  let theory = Core.Freq_response.biquad_theory ~b0 ~b1 ~b2 ~a1 ~a2 ~omega in
  Printf.printf
    "\ngain at omega = pi/4: chemistry %.3f, golden %.3f, closed form %.3f\n"
    p.Core.Freq_response.measured p.Core.Freq_response.ideal theory
