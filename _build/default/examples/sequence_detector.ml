(* A Moore machine with inputs: detect every (overlapping) occurrence of
   the pattern 1-0-1 in a stream of molecular input symbols.

   Each cycle, the environment presents exactly one symbol — an injection
   of the corresponding input species (dual-rail presence convention). The
   machine's "hit" output goes high for the cycle after each completed
   pattern.

   Run with: dune exec examples/sequence_detector.exe *)

let () =
  let net = Crn.Network.create () in
  let design = Core.Sync_design.make net in
  (* states encode pattern progress: 0 = none, 1 = "1", 2 = "10",
     3 = "101" just completed (progress "1" for overlaps) *)
  let transition q s =
    match (q, s) with
    | 0, 1 | 1, 1 -> 1
    | 0, 0 | 2, 0 -> 0
    | 1, 0 -> 2
    | 2, 1 -> 3
    | 3, 1 -> 1
    | 3, 0 -> 2
    | _ -> assert false
  in
  let detector =
    Core.Fsm.synthesize design
      {
        Core.Fsm.name = "det";
        n_states = 4;
        n_symbols = 2;
        transition;
        initial = 0;
        outputs = [ ("hit", fun q -> q = 3) ];
      }
  in
  Printf.printf "Synthesized the 101-detector: %d species, %d reactions\n\n"
    (Crn.Network.n_species net)
    (Crn.Network.n_reactions net);

  let word = [ 1; 0; 1; 0; 1; 1; 0; 1 ] in
  (* expected hits after symbols 3, 5 and 8 (1-indexed): 101, 10101, ...101 *)
  let trace, states = Core.Fsm.run detector ~symbols:word in

  print_endline "cycle | symbol | state | hit output";
  List.iteri
    (fun c s ->
      let state =
        match List.nth states c with Some q -> string_of_int q | None -> "?"
      in
      let hit =
        Ode.Trace.value_at trace
          ~species:(Ode.Trace.species_index trace "det.hit")
          (Core.Sync_design.sample_time design ~cycle:c)
      in
      Printf.printf "%5d | %6d | %5s | %8.2f %s\n" c s state hit
        (if hit > 5. then "<-- pattern!" else ""))
    word;

  (* cross-check against a software interpreter *)
  let _, expected_hits =
    List.fold_left
      (fun (q, hits) s ->
        let q' = transition q s in
        (q', hits @ [ q' = 3 ]))
      (0, []) word
  in
  let got_hits =
    List.map (function Some 3 -> true | _ -> false) states
  in
  Printf.printf "\nchemistry matches the software model: %b\n"
    (expected_hits = got_hits)
