open Crn

type t = {
  n : int;
  reds : int array;
  greens : int array;
  blues : int array;
  builder : Builder.t;
}

let make ?(feedback = true) ?(input = 0.) b ~n =
  if n < 1 then invalid_arg "Delay_chain.make: need at least one element";
  if input < 0. then invalid_arg "Delay_chain.make: negative input";
  (* element species: R_1..R_{n+1}, G_1..G_n, B_0..B_n *)
  let reds = Array.init (n + 1) (fun i -> Builder.species b (Printf.sprintf "R%d" (i + 1))) in
  let greens = Array.init n (fun i -> Builder.species b (Printf.sprintf "G%d" (i + 1))) in
  let blues = Array.init (n + 1) (fun i -> Builder.species b (Printf.sprintf "B%d" i)) in
  if input > 0. then Builder.init b blues.(0) input;
  (* global absence indicators, reactions (1) of the abstract *)
  let indicator name watched =
    let i = Builder.species b name in
    Builder.source ~label:("gen " ^ name) b Rates.slow i;
    Array.iter (fun s -> Builder.consume_by ~label:(name ^ " consumed") b Rates.fast ~by:s i) watched;
    i
  in
  let r_ind = indicator "r" reds in
  let g_ind = indicator "g" greens in
  let b_ind = indicator "b" blues in
  (* phase transfers with positive feedback, reactions (2)-(6) *)
  let dimer prefix arr j =
    let d = Builder.species b (Printf.sprintf "I_%s%d" prefix j) in
    Builder.react ~label:(Printf.sprintf "2%s%d -> dimer" prefix j) b Rates.slow
      [ (arr.(j), 2) ] [ (d, 1) ];
    Builder.react ~label:(Printf.sprintf "dimer -> 2%s%d" prefix j) b Rates.fast
      [ (d, 1) ] [ (arr.(j), 2) ];
    d
  in
  (* red-to-green: b + R_i ->slow G_i, feedback via green dimers *)
  let green_dimers = if feedback then Array.init n (fun j -> dimer "G" greens j) else [||] in
  for i = 0 to n - 1 do
    Builder.react ~label:(Printf.sprintf "r2g elem %d" (i + 1)) b Rates.slow
      [ (b_ind, 1); (reds.(i), 1) ]
      [ (greens.(i), 1) ];
    if feedback then
      Array.iteri
        (fun j d ->
          Builder.react
            ~label:(Printf.sprintf "r2g feedback i=%d j=%d" (i + 1) (j + 1))
            b Rates.fast
            [ (d, 1); (reds.(i), 1) ]
            [ (greens.(j), 2); (greens.(i), 1) ])
        green_dimers
  done;
  (* green-to-blue: r + G_i ->slow B_i, feedback via blue dimers (j=0..n) *)
  let blue_dimers =
    if feedback then Array.init (n + 1) (fun j -> dimer "B" blues j) else [||]
  in
  for i = 0 to n - 1 do
    Builder.react ~label:(Printf.sprintf "g2b elem %d" (i + 1)) b Rates.slow
      [ (r_ind, 1); (greens.(i), 1) ]
      [ (blues.(i + 1), 1) ];
    if feedback then
      Array.iteri
        (fun j d ->
          Builder.react
            ~label:(Printf.sprintf "g2b feedback i=%d j=%d" (i + 1) j)
            b Rates.fast
            [ (d, 1); (greens.(i), 1) ]
            [ (blues.(j), 2); (blues.(i + 1), 1) ])
        blue_dimers
  done;
  (* blue-to-red: g + B_i ->slow R_{i+1}, feedback via red dimers (j=1..n+1) *)
  let red_dimers =
    if feedback then Array.init (n + 1) (fun j -> dimer "R" reds j) else [||]
  in
  for i = 0 to n do
    Builder.react ~label:(Printf.sprintf "b2r elem %d" i) b Rates.slow
      [ (g_ind, 1); (blues.(i), 1) ]
      [ (reds.(i), 1) ];
    if feedback then
      Array.iteri
        (fun j d ->
          Builder.react
            ~label:(Printf.sprintf "b2r feedback i=%d j=%d" i (j + 1))
            b Rates.fast
            [ (d, 1); (blues.(i), 1) ]
            [ (reds.(j), 2); (reds.(i), 1) ])
        red_dimers
  done;
  { n; reds; greens; blues; builder = b }

let x_name c = Builder.name c.builder c.blues.(0)
let y_name c = Builder.name c.builder c.reds.(c.n)

let species_names c =
  let names arr = Array.to_list (Array.map (Builder.name c.builder) arr) in
  names c.reds @ names c.greens @ names c.blues

let simulate ?(env = Rates.default_env) ?(input = 80.) ~t1 ~n () =
  let net = Network.create () in
  let b = Builder.on net in
  let chain = make ~input b ~n in
  let trace =
    Ode.Driver.simulate ~method_:Ode.Driver.Rosenbrock ~env ~thin:5 ~t1 net
  in
  (trace, chain)

(* the feedback dimer of the output holds two units of signal; count it *)
let output_total c trace t =
  let y = Ode.Trace.value_at trace ~species:c.reds.(c.n) t in
  let scope_prefix =
    let full = Builder.name c.builder c.reds.(c.n) in
    String.sub full 0 (String.length full - String.length (Printf.sprintf "R%d" (c.n + 1)))
  in
  let dimer_name = Printf.sprintf "%sI_R%d" scope_prefix c.n in
  match Ode.Trace.species_index trace dimer_name with
  | exception Not_found -> y
  | s -> y +. (2. *. Ode.Trace.value_at trace ~species:s t)

let completion_time ?(frac = 0.99) c trace =
  let names = species_names c in
  let total0 =
    List.fold_left
      (fun acc name ->
        acc +. (Ode.Trace.column_named trace name).(0))
      0. names
  in
  if total0 <= 0. then None
  else begin
    let times = Ode.Trace.times trace in
    let target = frac *. total0 in
    let rec find i =
      if i >= Array.length times then None
      else if output_total c trace times.(i) >= target then Some times.(i)
      else find (i + 1)
    in
    find 0
  end

let is_conservative c =
  let net = Builder.network c.builder in
  let w = Array.make (Network.n_species net) 0. in
  Array.iter (fun s -> w.(s) <- 1.) c.reds;
  Array.iter (fun s -> w.(s) <- 1.) c.greens;
  Array.iter (fun s -> w.(s) <- 1.) c.blues;
  (* each feedback dimer holds two units of signal *)
  for sp = 0 to Network.n_species net - 1 do
    let name = Network.species_name net sp in
    let parts = String.split_on_char '.' name in
    let last = List.nth parts (List.length parts - 1) in
    if String.length last >= 2 && last.[0] = 'I' && last.[1] = '_' then
      w.(sp) <- 2.
  done;
  Conservation.is_invariant net w
