lib/async_mol/delay_chain.mli: Crn Ode
