lib/async_mol/delay_chain.ml: Array Builder Conservation Crn List Network Ode Printf Rates String
