(** The asynchronous (self-timed) delay-element chain of the companion
    IWBDA 2011 abstract, implemented exactly as its reactions (1)–(6).

    Every signal species is color-coded red, green or blue; a chain of [n]
    delay elements assigns element [i] the species [R_i], [G_i], [B_i],
    with the input [X = B_0] and the output [Y = R_(n+1)]. Three {e global}
    absence indicators [r], [g], [b] (one per color, regardless of chain
    length) order the transfers with a handshake: a red-to-green transfer
    [b + R_i ->slow G_i] can only proceed while {e no} blue molecules of
    any element remain, and so on cyclically. Fast positive-feedback
    reactions ([2G_j <-> I_G_j], [I_G_j + R_i -> 2G_j + G_i], all pairs)
    sweep each transfer to completion once it begins.

    The result: the quantity presented as [X] ripples through the chain one
    element per three-phase handshake cycle and accumulates, undiminished,
    in [Y] — accurately and independently of the specific rates, assuming
    only fast reactions are fast relative to slow ones. *)

type t = {
  n : int;
  reds : int array;  (** [R_1 .. R_(n+1)]; the last is the output [Y] *)
  greens : int array;  (** [G_1 .. G_n] *)
  blues : int array;  (** [B_0 .. B_n]; the first is the input [X] *)
  builder : Crn.Builder.t;
}

val make : ?feedback:bool -> ?input:float -> Crn.Builder.t -> n:int -> t
(** Build a chain of [n >= 1] delay elements under the builder's scope.
    [input] (default [0.]) presets the quantity of [X]. [feedback:false]
    omits the positive-feedback reactions (the crispness ablation). *)

val x_name : t -> string
val y_name : t -> string

val species_names : t -> string list
(** All chain species (reds then greens then blues), fully qualified. *)

val simulate :
  ?env:Crn.Rates.env -> ?input:float -> t1:float -> n:int -> unit -> Ode.Trace.t * t
(** Convenience: build a fresh network with a chain of [n] elements,
    preset [input] (default [80.]) on [X], simulate to [t1]. *)

val output_total : t -> Ode.Trace.t -> float -> float
(** The output quantity at a time, including the two units per molecule
    parked in the output's own positive-feedback dimer (the [2Y <-> I]
    equilibrium stores [~k_slow/k_fast] of the square of the signal
    there). *)

val completion_time : ?frac:float -> t -> Ode.Trace.t -> float option
(** First time the output holds [frac] (default [0.99]) of the injected
    total (taken as the chain total at the first sample); [None] if never
    reached. *)

val is_conservative : t -> bool
(** The chain's species carry a conservation law (nothing creates or
    destroys signal, only the indicators are open). *)
