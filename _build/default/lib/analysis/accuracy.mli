(** Accuracy metrics for computed quantities.

    Rate-independent constructs must deliver the ideal output values; these
    helpers quantify the residual error of a simulated design against its
    ideal, and how fast it settles there. *)

val relative_error : expected:float -> float -> float
(** [|actual - expected| / max(|expected|, eps)] with [eps = 1e-12]; an
    expected value of zero therefore reports the absolute error. *)

val absolute_error : expected:float -> float -> float

val settling_time :
  ?tol:float -> times:float array -> values:float array -> unit -> float
(** The earliest time after which the series stays within [tol] (relative,
    default 0.02) of its final value. The first sample time if it never
    leaves the band. *)

val worst_over :
  (unit -> float) list -> float
(** Maximum of a list of lazily computed error metrics (used by the sweep
    tables: "worst error across all latches/bits"). [neg_infinity] for []. *)

val within : tol:float -> expected:float -> float -> bool
(** Is the relative error at most [tol]? *)
