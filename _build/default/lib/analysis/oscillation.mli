(** Oscillation analysis for clock traces.

    Measures the properties the paper's clock figures report: sustained
    oscillation, its period, amplitude, and the intervals during which each
    phase species is "high". All series are given as parallel [times] /
    [values] arrays (e.g. from {!Ode.Trace.times} / {!Ode.Trace.column}). *)

type crossing = { at : float; rising : bool }

val crossings :
  threshold:float -> times:float array -> values:float array -> crossing list
(** Threshold crossings in time order, located by linear interpolation. *)

val period :
  ?threshold:float -> times:float array -> values:float array -> unit -> float option
(** Mean spacing of consecutive rising crossings; [None] with fewer than
    three rising crossings (not sustained). Default threshold: half of the
    series maximum. *)

val period_jitter :
  ?threshold:float -> times:float array -> values:float array -> unit -> float option
(** Sample standard deviation of the rising-crossing spacings — a crispness
    measure for the clock. *)

val amplitude : values:float array -> float
(** Max minus min of the series. *)

val is_sustained :
  ?threshold:float -> ?min_cycles:int -> times:float array -> values:float array -> unit -> bool
(** At least [min_cycles] (default 3) full rising crossings. *)

val high_intervals :
  threshold:float -> times:float array -> values:float array -> (float * float) list
(** Maximal intervals during which the series is at or above threshold
    (clipped to the sampled range). *)

val duty_cycle :
  threshold:float -> times:float array -> values:float array -> float
(** Fraction of the sampled time range spent at or above threshold. *)
