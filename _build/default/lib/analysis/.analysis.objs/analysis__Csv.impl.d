lib/analysis/csv.ml: Buffer Fun List Ode String
