lib/analysis/csv.mli: Ode
