lib/analysis/oscillation.mli:
