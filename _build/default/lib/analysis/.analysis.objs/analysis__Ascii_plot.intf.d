lib/analysis/ascii_plot.mli: Ode
