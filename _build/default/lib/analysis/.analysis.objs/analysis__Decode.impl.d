lib/analysis/decode.ml: List Ode
