lib/analysis/ascii_plot.ml: Array Buffer Float List Numeric Ode Printf String
