lib/analysis/table.mli:
