lib/analysis/decode.mli: Ode
