lib/analysis/table.ml: Buffer List Printf String
