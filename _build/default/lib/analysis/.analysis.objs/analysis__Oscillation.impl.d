lib/analysis/oscillation.ml: Array List Numeric
