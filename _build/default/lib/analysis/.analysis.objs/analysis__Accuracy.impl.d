lib/analysis/accuracy.ml: Array Float List
