lib/analysis/accuracy.mli:
