(** Plain-text table rendering for the benchmark harness (the "rows the
    paper reports"). *)

type t

val create : string list -> t
(** Table with the given column headers. *)

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] if the cell count differs from the header. *)

val add_rowf : t -> ('a, unit, string, unit) format4 -> 'a
(** Formats a single string and splits it on ['|'] into cells:
    [add_rowf t "%d|%g" 3 0.5]. *)

val render : t -> string
(** Aligned, with a header separator:
    {v
    design    | species | reactions
    ----------+---------+----------
    counter-3 |      42 |        57
    v} *)

val cell_f : float -> string
(** Standard numeric cell formatting ([%.4g]). *)

val headers : t -> string list

val rows : t -> string list list
(** In insertion order. *)
