let escape cell =
  let needs_quote =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell
  in
  if not needs_quote then cell
  else begin
    let buf = Buffer.create (String.length cell + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      cell;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let write_trace ~path trace =
  with_out path (fun oc -> output_string oc (Ode.Trace.to_csv trace))

let write_rows ~path ~header rows =
  with_out path (fun oc ->
      let put row =
        output_string oc (String.concat "," (List.map escape row));
        output_char oc '\n'
      in
      put header;
      List.iter put rows)
