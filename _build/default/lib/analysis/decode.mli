(** Logic-level decoding of concentrations.

    In the paper's convention a low concentration of a molecular type is
    logical 0 and a high concentration is logical 1. Decoding compares
    against a threshold, by default half of a declared full-scale
    quantity. *)

val bit : threshold:float -> float -> bool
(** [bit ~threshold v] is [v >= threshold]. *)

val bit_of_pair : float -> float -> bool
(** Dual-rail decoding: of two concentrations (the 0-rail and the 1-rail),
    the logical value is whichever dominates. *)

val bits_at :
  threshold:float -> Ode.Trace.t -> string list -> float -> bool list
(** Decode the named species of a trace at a time (linear interpolation),
    least-significant first as given. *)

val int_of_bits : bool list -> int
(** Binary value of a bit list, least-significant bit first. *)

val bits_of_int : width:int -> int -> bool list
(** Inverse of {!int_of_bits}; raises [Invalid_argument] if the value does
    not fit. *)

val int_at : threshold:float -> Ode.Trace.t -> string list -> float -> int
(** [bits_at] composed with [int_of_bits]. *)

val onehot_at : threshold:float -> Ode.Trace.t -> string list -> float -> int option
(** Index of the unique species above threshold at a time; [None] when zero
    or several are high (an invalid one-hot code). *)
