(** ASCII rendering of simulation traces — how the benchmark harness
    reproduces the paper's {e figures} in a terminal. Each series gets a
    distinct glyph; samples are resampled onto a uniform character grid. *)

type series = { label : string; times : float array; values : float array }

val render :
  ?width:int -> ?height:int -> ?title:string -> series list -> string
(** Render the series overlaid in one frame (default 72x18 characters plus
    axes). The y-range spans 0 to the global maximum; the x-range spans the
    union of the series' time ranges. Raises [Invalid_argument] if no series
    or all series are empty. *)

val of_trace :
  Ode.Trace.t -> string list -> series list
(** Extract named species from a trace as plottable series. *)
