type series = { label : string; times : float array; values : float array }

let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |]

let render ?(width = 72) ?(height = 18) ?title series =
  let series = List.filter (fun s -> Array.length s.times > 0) series in
  if series = [] then invalid_arg "Ascii_plot.render: no data";
  let t0 =
    List.fold_left (fun acc s -> Float.min acc s.times.(0)) infinity series
  in
  let t1 =
    List.fold_left
      (fun acc s -> Float.max acc s.times.(Array.length s.times - 1))
      neg_infinity series
  in
  let ymax =
    List.fold_left
      (fun acc s -> Float.max acc (Numeric.Stats.maximum s.values))
      1e-12 series
  in
  let grid = Array.make_matrix height width ' ' in
  List.iteri
    (fun si s ->
      let glyph = glyphs.(si mod Array.length glyphs) in
      for col = 0 to width - 1 do
        let t =
          t0 +. (float_of_int col /. float_of_int (width - 1) *. (t1 -. t0))
        in
        let v = Numeric.Interp.at ~times:s.times ~values:s.values t in
        let row_f = v /. ymax *. float_of_int (height - 1) in
        let row = height - 1 - int_of_float (Float.round row_f) in
        let row = max 0 (min (height - 1) row) in
        grid.(row).(col) <- glyph
      done)
    series;
  let buf = Buffer.create (width * height * 2) in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  Array.iteri
    (fun i row ->
      let ylabel =
        if i = 0 then Printf.sprintf "%8.3g |" ymax
        else if i = height - 1 then Printf.sprintf "%8.3g |" 0.
        else "         |"
      in
      Buffer.add_string buf ylabel;
      Buffer.add_string buf (String.init width (fun j -> row.(j)));
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf ("         +" ^ String.make width '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "          %-8.4g%s%8.4g" t0
       (String.make (max 1 (width - 16)) ' ')
       t1);
  Buffer.add_char buf '\n';
  Buffer.add_string buf "          legend: ";
  List.iteri
    (fun si s ->
      if si > 0 then Buffer.add_string buf "  ";
      Buffer.add_char buf glyphs.(si mod Array.length glyphs);
      Buffer.add_char buf '=';
      Buffer.add_string buf s.label)
    series;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let of_trace trace names =
  let times = Ode.Trace.times trace in
  List.map
    (fun label -> { label; times; values = Ode.Trace.column_named trace label })
    names
