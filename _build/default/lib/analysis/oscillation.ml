type crossing = { at : float; rising : bool }

let check_series times values =
  let n = Array.length times in
  if n = 0 || n <> Array.length values then
    invalid_arg "Oscillation: empty or mismatched series"

let crossings ~threshold ~times ~values =
  check_series times values;
  let n = Array.length times in
  let out = ref [] in
  for i = 0 to n - 2 do
    let a = values.(i) -. threshold and b = values.(i + 1) -. threshold in
    if (a < 0. && b >= 0.) || (a >= 0. && b < 0.) then begin
      let frac = if b = a then 0. else -.a /. (b -. a) in
      let at = times.(i) +. (frac *. (times.(i + 1) -. times.(i))) in
      out := { at; rising = a < 0. } :: !out
    end
  done;
  List.rev !out

let default_threshold values =
  Numeric.Stats.maximum values /. 2.

let rising_times ?threshold ~times ~values () =
  let threshold =
    match threshold with Some t -> t | None -> default_threshold values
  in
  crossings ~threshold ~times ~values
  |> List.filter_map (fun c -> if c.rising then Some c.at else None)

let spacings ?threshold ~times ~values () =
  let rising = rising_times ?threshold ~times ~values () in
  let rec diffs = function
    | a :: (b :: _ as rest) -> (b -. a) :: diffs rest
    | _ -> []
  in
  diffs rising

let period ?threshold ~times ~values () =
  match spacings ?threshold ~times ~values () with
  | [] | [ _ ] -> None
  | ds -> Some (Numeric.Stats.mean (Array.of_list ds))

let period_jitter ?threshold ~times ~values () =
  match spacings ?threshold ~times ~values () with
  | [] | [ _ ] -> None
  | ds -> Some (Numeric.Stats.stddev (Array.of_list ds))

let amplitude ~values =
  Numeric.Stats.maximum values -. Numeric.Stats.minimum values

let is_sustained ?threshold ?(min_cycles = 3) ~times ~values () =
  List.length (rising_times ?threshold ~times ~values ()) >= min_cycles

let high_intervals ~threshold ~times ~values =
  check_series times values;
  let n = Array.length times in
  let out = ref [] in
  let start = ref (if values.(0) >= threshold then Some times.(0) else None) in
  let cs = crossings ~threshold ~times ~values in
  List.iter
    (fun { at; rising } ->
      match (rising, !start) with
      | true, None -> start := Some at
      | false, Some s ->
          out := (s, at) :: !out;
          start := None
      | true, Some _ | false, None -> ())
    cs;
  (match !start with
  | Some s -> out := (s, times.(n - 1)) :: !out
  | None -> ());
  List.rev !out

let duty_cycle ~threshold ~times ~values =
  check_series times values;
  let total = times.(Array.length times - 1) -. times.(0) in
  if total <= 0. then if values.(0) >= threshold then 1. else 0.
  else begin
    let high =
      List.fold_left
        (fun acc (a, b) -> acc +. (b -. a))
        0.
        (high_intervals ~threshold ~times ~values)
    in
    high /. total
  end
