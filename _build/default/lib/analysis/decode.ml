let bit ~threshold v = v >= threshold
let bit_of_pair rail0 rail1 = rail1 >= rail0

let bits_at ~threshold trace names t =
  List.map
    (fun name ->
      let s = Ode.Trace.species_index trace name in
      bit ~threshold (Ode.Trace.value_at trace ~species:s t))
    names

let int_of_bits bits =
  List.fold_right (fun b acc -> (2 * acc) + if b then 1 else 0) bits 0

let bits_of_int ~width v =
  if v < 0 || (width < 63 && v lsr width <> 0) then
    invalid_arg "Decode.bits_of_int: value does not fit";
  List.init width (fun i -> (v lsr i) land 1 = 1)

let int_at ~threshold trace names t =
  int_of_bits (bits_at ~threshold trace names t)

let onehot_at ~threshold trace names t =
  let bits = bits_at ~threshold trace names t in
  let highs = List.filteri (fun _ b -> b) bits in
  match highs with
  | [ _ ] ->
      let rec index i = function
        | [] -> None
        | true :: _ -> Some i
        | false :: rest -> index (i + 1) rest
      in
      index 0 bits
  | _ -> None
