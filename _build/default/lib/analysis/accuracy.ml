let absolute_error ~expected actual = Float.abs (actual -. expected)

let relative_error ~expected actual =
  absolute_error ~expected actual /. Float.max (Float.abs expected) 1e-12

let settling_time ?(tol = 0.02) ~times ~values () =
  let n = Array.length times in
  if n = 0 || n <> Array.length values then
    invalid_arg "Accuracy.settling_time: empty or mismatched series";
  let final = values.(n - 1) in
  let band = tol *. Float.max (Float.abs final) 1e-12 in
  let rec scan i last_violation =
    if i >= n then last_violation
    else
      let lv =
        if Float.abs (values.(i) -. final) > band then times.(i)
        else last_violation
      in
      scan (i + 1) lv
  in
  scan 0 times.(0)

let worst_over metrics =
  List.fold_left (fun acc m -> Float.max acc (m ())) neg_infinity metrics

let within ~tol ~expected actual = relative_error ~expected actual <= tol
