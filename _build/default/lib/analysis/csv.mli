(** CSV export helpers (trace dumps for external plotting). *)

val write_trace : path:string -> Ode.Trace.t -> unit
(** Write {!Ode.Trace.to_csv} output to a file. *)

val write_rows : path:string -> header:string list -> string list list -> unit
(** Write a header line then rows, comma-separated. Cells containing commas
    or quotes are quoted per RFC 4180. *)

val escape : string -> string
(** RFC 4180 quoting of a single cell (identity when unnecessary). *)
