type t = { headers : string list; mutable rows : string list list }

let create headers =
  if headers = [] then invalid_arg "Table.create: no columns";
  { headers; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: cell count mismatch";
  t.rows <- cells :: t.rows

let add_rowf t fmt =
  Printf.ksprintf (fun s -> add_row t (String.split_on_char '|' s)) fmt

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let width col =
    List.fold_left
      (fun acc row -> max acc (String.length (List.nth row col)))
      0 all
  in
  let widths = List.init ncols width in
  let is_numeric s =
    s <> "" && String.for_all (fun c -> (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = 'e' || c = '%') s
  in
  let pad w s =
    let n = String.length s in
    if n >= w then s
    else if is_numeric s then String.make (w - n) ' ' ^ s
    else s ^ String.make (w - n) ' '
  in
  let line row =
    String.concat " | " (List.map2 pad widths row)
  in
  let sep =
    String.concat "-+-" (List.map (fun w -> String.make w '-') widths)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line t.headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let cell_f x = Printf.sprintf "%.4g" x

let headers t = t.headers
let rows t = List.rev t.rows
