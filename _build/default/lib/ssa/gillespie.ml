type result = { trace : Ode.Trace.t; final : float array; n_events : int }

let compile = Compiled.compile
let propensity = Compiled.propensity

let run ?(env = Crn.Rates.default_env) ?(seed = 1L) ?sample_dt
    ?(max_events = 50_000_000) ~t1 net =
  if t1 <= 0. then invalid_arg "Gillespie.run: t1 must be positive";
  let sample_dt =
    match sample_dt with
    | Some dt when dt > 0. -> dt
    | Some _ -> invalid_arg "Gillespie.run: sample_dt must be positive"
    | None -> t1 /. 500.
  in
  let rng = Numeric.Rng.create seed in
  let reactions = compile env net in
  let n = Crn.Network.n_species net in
  let counts =
    Array.map
      (fun x -> int_of_float (Float.round x))
      (Crn.Network.initial_state net)
  in
  let trace = Ode.Trace.create ~names:(Crn.Network.species_names net) in
  let snapshot () = Array.map float_of_int counts in
  let props = Array.make (Array.length reactions) 0. in
  let t = ref 0. in
  let next_sample = ref 0. in
  let n_events = ref 0 in
  let record_due_samples () =
    while !next_sample <= !t && !next_sample <= t1 +. 1e-12 do
      Ode.Trace.record trace !next_sample (snapshot ());
      next_sample := !next_sample +. sample_dt
    done
  in
  record_due_samples ();
  (try
     while !t < t1 do
       if !n_events >= max_events then failwith "Gillespie: max event count exceeded";
       Array.iteri (fun i r -> props.(i) <- propensity r counts) reactions;
       let total = Array.fold_left ( +. ) 0. props in
       if total <= 0. then begin
         (* no reaction can fire: hold state to the end *)
         t := t1;
         record_due_samples ();
         raise Exit
       end;
       let dt = Numeric.Rng.exponential rng total in
       t := !t +. dt;
       if !t > t1 then begin
         t := t1;
         record_due_samples ();
         raise Exit
       end;
       record_due_samples ();
       let j = Numeric.Rng.pick_weighted rng props in
       Compiled.apply reactions.(j) counts 1;
       incr n_events
     done
   with Exit -> ());
  ignore n;
  { trace; final = snapshot (); n_events = !n_events }

let mean_final ?env ?(runs = 20) ?(seed = 42L) ~t1 net species =
  if runs < 1 then invalid_arg "Gillespie.mean_final: runs must be >= 1";
  let idx =
    match Crn.Network.find_species net species with
    | Some i -> i
    | None ->
        invalid_arg
          (Printf.sprintf "Gillespie.mean_final: unknown species %S" species)
  in
  let root = Numeric.Rng.create seed in
  let finals =
    Array.init runs (fun _ ->
        let s = Numeric.Rng.uint64 root in
        let { final; _ } = run ?env ~seed:s ~t1 net in
        final.(idx))
  in
  (Numeric.Stats.mean finals, Numeric.Stats.stddev finals)
