(** Gillespie's direct-method stochastic simulation algorithm.

    The paper validates designs with deterministic ODE simulation; real
    molecular systems are discrete and stochastic. This simulator runs the
    same networks over integer molecule counts to check that the constructs
    survive count-level noise (an extension experiment). Initial
    concentrations are interpreted as counts (rounded). Volume is taken as
    1, so deterministic and stochastic rate constants coincide for
    unimolecular reactions; bimolecular propensities use the standard
    combinatorial [k * n_a * n_b] / [k * n * (n-1) / 2] forms. *)

type result = {
  trace : Ode.Trace.t;  (** states sampled every [sample_dt] *)
  final : float array;  (** counts at [t1] *)
  n_events : int;  (** total reaction firings *)
}

val run :
  ?env:Crn.Rates.env ->
  ?seed:int64 ->
  ?sample_dt:float ->
  ?max_events:int ->
  t1:float ->
  Crn.Network.t ->
  result
(** Simulate from 0 to [t1]. Defaults: [seed = 1L], [sample_dt = t1/500],
    [max_events = 50_000_000] (raises [Failure] when exhausted). *)

val mean_final :
  ?env:Crn.Rates.env ->
  ?runs:int ->
  ?seed:int64 ->
  t1:float ->
  Crn.Network.t ->
  string ->
  float * float
(** [mean_final ~t1 net species] runs the SSA [runs] times (default 20) with
    seeds derived from [seed] and returns mean and sample standard deviation
    of the species' final count. *)
