lib/ssa/tau_leap.mli: Crn Numeric Ode
