lib/ssa/compiled.ml: Array Crn List
