lib/ssa/gillespie.mli: Crn Ode
