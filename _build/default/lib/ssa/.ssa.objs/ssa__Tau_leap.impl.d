lib/ssa/tau_leap.ml: Array Compiled Crn Float Numeric Ode
