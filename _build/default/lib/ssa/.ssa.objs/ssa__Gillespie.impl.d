lib/ssa/gillespie.ml: Array Compiled Crn Float Numeric Ode Printf
