(* Shared compiled-reaction representation for the stochastic simulators:
   flat arrays of reactant/update data plus combinatorial propensities. *)

type reaction = {
  k : float;
  reactant_species : int array;
  reactant_coeff : int array;
  delta_species : int array;
  delta : int array;
}

let compile env net =
  let compile_reaction r =
    let reactants = Array.of_list r.Crn.Reaction.reactants in
    let net_list = Crn.Reaction.net_stoich r in
    {
      k = Crn.Rates.value env r.Crn.Reaction.rate;
      reactant_species = Array.map fst reactants;
      reactant_coeff = Array.map snd reactants;
      delta_species = Array.of_list (List.map fst net_list);
      delta = Array.of_list (List.map snd net_list);
    }
  in
  Array.map compile_reaction (Crn.Network.reactions net)

(* combinatorial propensity: a = k * prod_i binom(n_i, c_i) *)
let propensity r (counts : int array) =
  let acc = ref r.k in
  (try
     for i = 0 to Array.length r.reactant_species - 1 do
       let n = counts.(r.reactant_species.(i)) in
       let c = r.reactant_coeff.(i) in
       if n < c then begin
         acc := 0.;
         raise Exit
       end;
       let b =
         match c with
         | 1 -> float_of_int n
         | 2 -> float_of_int n *. float_of_int (n - 1) /. 2.
         | 3 ->
             float_of_int n *. float_of_int (n - 1) *. float_of_int (n - 2)
             /. 6.
         | _ ->
             let rec fall acc i =
               if i = c then acc else fall (acc *. float_of_int (n - i)) (i + 1)
             in
             let rec fact acc i =
               if i <= 1 then acc else fact (acc *. float_of_int i) (i - 1)
             in
             fall 1. 0 /. fact 1. c
       in
       acc := !acc *. b
     done
   with Exit -> ());
  !acc

let apply r (counts : int array) times =
  for i = 0 to Array.length r.delta_species - 1 do
    counts.(r.delta_species.(i)) <-
      counts.(r.delta_species.(i)) + (times * r.delta.(i))
  done

(* highest reactant molecularity each species participates in (Cao's g_i,
   capped at 3); 1 for species that are never reactants *)
let reactant_order_per_species n reactions =
  let g = Array.make n 1 in
  Array.iter
    (fun r ->
      let order =
        Array.fold_left ( + ) 0 r.reactant_coeff
      in
      Array.iter
        (fun s -> g.(s) <- max g.(s) (min order 3))
        r.reactant_species)
    reactions;
  g
