type t = { net : Network.t; prefix : string }

let on net = { net; prefix = "" }
let network b = b.net

let scoped b sub =
  if sub = "" then invalid_arg "Builder.scoped: empty scope name";
  let prefix = if b.prefix = "" then sub else b.prefix ^ "." ^ sub in
  { b with prefix }

let species b name =
  let full = if b.prefix = "" then name else b.prefix ^ "." ^ name in
  Network.species b.net full

let global b name = Network.species b.net name
let init b s x = Network.set_init b.net s x
let name b s = Network.species_name b.net s

let react ?label b rate reactants products =
  Network.add_reaction b.net (Reaction.make ?label ~reactants ~products rate)

let fast ?label b reactants products = react ?label b Rates.fast reactants products
let slow ?label b reactants products = react ?label b Rates.slow reactants products
let source ?label b rate s = react ?label b rate [] [ (s, 1) ]
let decay ?label b rate s = react ?label b rate [ (s, 1) ] []
let transfer ?label b rate x y = react ?label b rate [ (x, 1) ] [ (y, 1) ]

let transfer_cat ?label b rate ~cat x y =
  react ?label b rate [ (x, 1); (cat, 1) ] [ (y, 1); (cat, 1) ]

let consume_by ?label b rate ~by i =
  react ?label b rate [ (i, 1); (by, 1) ] [ (by, 1) ]
