let resolve net names =
  List.map
    (fun name ->
      match Network.find_species net name with
      | Some s -> s
      | None ->
          invalid_arg (Printf.sprintf "Slice: unknown species %S" name))
    names

(* backward closure: a reaction that net-changes a tracked species makes
   all of its reactants (rate inputs, including catalysts) tracked too *)
let influence_set net names =
  let reactions = Network.reactions net in
  let tracked = Array.make (Network.n_species net) false in
  List.iter (fun s -> tracked.(s) <- true) (resolve net names);
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun r ->
        let affects =
          List.exists (fun (s, _) -> tracked.(s)) (Reaction.net_stoich r)
        in
        if affects then
          List.iter
            (fun (s, _) ->
              if not tracked.(s) then begin
                tracked.(s) <- true;
                changed := true
              end)
            r.Reaction.reactants)
      reactions
  done;
  tracked

let influencing net names =
  let tracked = influence_set net names in
  List.filter (fun s -> tracked.(s)) (List.init (Array.length tracked) Fun.id)

let kept_reactions net names =
  let tracked = influence_set net names in
  let reactions = Network.reactions net in
  List.filter
    (fun i ->
      List.exists
        (fun (s, _) -> tracked.(s))
        (Reaction.net_stoich reactions.(i)))
    (List.init (Array.length reactions) Fun.id)

let reaction_indices = kept_reactions

let extract net names =
  let keep = kept_reactions net names in
  let reactions = Network.reactions net in
  let out = Network.create () in
  let mapping = Hashtbl.create 32 in
  let import s =
    match Hashtbl.find_opt mapping s with
    | Some s' -> s'
    | None ->
        let s' = Network.species out (Network.species_name net s) in
        Network.set_init out s' (Network.init_of net s);
        Hashtbl.add mapping s s';
        s'
  in
  (* influencing species first, so they exist even if no kept reaction
     mentions them *)
  let tracked = influence_set net names in
  Array.iteri (fun s t -> if t then ignore (import s)) tracked;
  List.iter
    (fun i -> Network.add_reaction out (Reaction.rename import reactions.(i)))
    keep;
  out
