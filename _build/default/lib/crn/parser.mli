(** Parser for the textual [.crn] network format (the inverse of
    {!Network.pp}).

    Line-oriented grammar:
    {v
    # full-line comment
    init X 100              initial concentration
    X + 2 Y ->{fast} Z      reaction; coefficient 1 may be omitted
    0 ->{slow} r            zero-order source ("0" or empty side)
    A ->{fast*2.5} 0        category with optional scale; decay
    2 G <->{slow}{fast} I   reversible sugar: the two one-way reactions
    v}

    The printer always emits one-way reactions, so a network parsed from
    reversible sugar round-trips to (equivalent) desugared text.
    Trailing [# comments] are allowed after any line. *)

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val network_of_string : string -> Network.t

val network_of_file : string -> Network.t
(** Raises [Sys_error] if the file cannot be read. *)

val roundtrip : Network.t -> Network.t
(** [network_of_string (Network.to_string net)]; used by tests to assert the
    printer and parser agree. *)
