type t = {
  mutable names : string array; (* index -> name; grows geometrically *)
  mutable n_species : int;
  index : (string, int) Hashtbl.t;
  mutable reactions : Reaction.t list; (* reverse insertion order *)
  mutable n_reactions : int;
  mutable init : float array; (* parallel to [names] *)
}

let create () =
  {
    names = Array.make 16 "";
    n_species = 0;
    index = Hashtbl.create 64;
    reactions = [];
    n_reactions = 0;
    init = Array.make 16 0.;
  }

let bad_name_char c =
  match c with ' ' | '\t' | '\n' | '\r' | '#' | '>' | '{' | '}' -> true | _ -> false

let valid_name name =
  String.length name > 0 && not (String.exists bad_name_char name)

let grow t =
  let cap = Array.length t.names in
  if t.n_species = cap then begin
    let names = Array.make (2 * cap) "" in
    Array.blit t.names 0 names 0 cap;
    t.names <- names;
    let init = Array.make (2 * cap) 0. in
    Array.blit t.init 0 init 0 cap;
    t.init <- init
  end

let species t name =
  match Hashtbl.find_opt t.index name with
  | Some i -> i
  | None ->
      if not (valid_name name) then
        invalid_arg (Printf.sprintf "Network.species: invalid name %S" name);
      grow t;
      let i = t.n_species in
      t.names.(i) <- name;
      t.n_species <- i + 1;
      Hashtbl.add t.index name i;
      i

let find_species t name = Hashtbl.find_opt t.index name

let species_name t i =
  if i < 0 || i >= t.n_species then
    invalid_arg "Network.species_name: index out of range";
  t.names.(i)

let n_species t = t.n_species
let n_reactions t = t.n_reactions

let add_reaction t r =
  let check (s, _) =
    if s < 0 || s >= t.n_species then
      invalid_arg "Network.add_reaction: unknown species index"
  in
  List.iter check r.Reaction.reactants;
  List.iter check r.Reaction.products;
  t.reactions <- r :: t.reactions;
  t.n_reactions <- t.n_reactions + 1

let reactions t = Array.of_list (List.rev t.reactions)

let set_init t i x =
  if i < 0 || i >= t.n_species then
    invalid_arg "Network.set_init: index out of range";
  if x < 0. then invalid_arg "Network.set_init: negative initial value";
  t.init.(i) <- x

let init_of t i =
  if i < 0 || i >= t.n_species then
    invalid_arg "Network.init_of: index out of range";
  t.init.(i)

let initial_state t = Array.sub t.init 0 t.n_species
let species_names t = Array.sub t.names 0 t.n_species

let add_to ~prefix ~dst src =
  let map = Array.make src.n_species (-1) in
  for i = 0 to src.n_species - 1 do
    let name =
      if prefix = "" then src.names.(i) else prefix ^ "." ^ src.names.(i)
    in
    let j = species dst name in
    map.(i) <- j;
    if src.init.(i) > 0. then set_init dst j (init_of dst j +. src.init.(i))
  done;
  let rename i = map.(i) in
  List.iter
    (fun r -> add_reaction dst (Reaction.rename rename r))
    (List.rev src.reactions);
  rename

let stoichiometry t =
  let rs = reactions t in
  let m = Numeric.Mat.create t.n_species (Array.length rs) 0. in
  Array.iteri
    (fun j r ->
      List.iter
        (fun (s, c) -> m.(s).(j) <- float_of_int c)
        (Reaction.net_stoich r))
    rs;
  m

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  for i = 0 to t.n_species - 1 do
    if t.init.(i) > 0. then
      Format.fprintf fmt "init %s %g@," t.names.(i) t.init.(i)
  done;
  let names i = t.names.(i) in
  List.iter
    (fun r -> Format.fprintf fmt "%a@," (Reaction.pp ~names) r)
    (List.rev t.reactions);
  Format.fprintf fmt "@]"

let to_string t = Format.asprintf "%a" pp t
