type category = Fast | Slow
type t = { category : category; scale : float }
type env = { k_fast : float; k_slow : float }

let fast = { category = Fast; scale = 1. }
let slow = { category = Slow; scale = 1. }

let scaled category scale =
  if scale <= 0. then invalid_arg "Rates: scale must be positive";
  { category; scale }

let fast_scaled s = scaled Fast s
let slow_scaled s = scaled Slow s

let value env { category; scale } =
  match category with
  | Fast -> env.k_fast *. scale
  | Slow -> env.k_slow *. scale

let default_env = { k_fast = 1000.; k_slow = 1. }

let env_with_ratio r =
  if r <= 0. then invalid_arg "Rates.env_with_ratio: ratio must be positive";
  { k_fast = r; k_slow = 1. }

let compare_category a b =
  match (a, b) with
  | Fast, Fast | Slow, Slow -> 0
  | Fast, Slow -> -1
  | Slow, Fast -> 1

let pp_category fmt = function
  | Fast -> Format.pp_print_string fmt "fast"
  | Slow -> Format.pp_print_string fmt "slow"

let pp fmt { category; scale } =
  if scale = 1. then pp_category fmt category
  else Format.fprintf fmt "%a*%g" pp_category category scale
