(** Coarse rate categories.

    The paper's central robustness claim is that its constructs are correct
    given only two rate {e categories} — "fast" and "slow" — never specific
    rate constants: it does not matter how fast any fast reaction is relative
    to another fast one, only that fast reactions are fast relative to slow
    ones. A rate is therefore a category plus a dimensionless scale; concrete
    kinetic constants are bound late, by an {!env}, at simulation time. The
    rate-robustness experiments re-simulate one network under many
    environments. *)

type category = Fast | Slow

type t = { category : category; scale : float }
(** [scale] defaults to [1.] and exists for modelling variability {e within}
    a category (e.g. a "slow" reaction twice as fast as another slow one);
    correctness of the constructs must never depend on it. *)

type env = { k_fast : float; k_slow : float }
(** Binding of categories to mass-action kinetic constants. *)

val fast : t
val slow : t

val fast_scaled : float -> t
val slow_scaled : float -> t

val value : env -> t -> float
(** Concrete kinetic constant of a rate under an environment. *)

val default_env : env
(** [k_fast = 1000., k_slow = 1.] — the separation used in the paper's ODE
    simulations. *)

val env_with_ratio : float -> env
(** [env_with_ratio r] keeps [k_slow = 1.] and sets [k_fast = r]; used by the
    rate-independence sweeps. Raises [Invalid_argument] if [r <= 0.]. *)

val compare_category : category -> category -> int

val pp_category : Format.formatter -> category -> unit

val pp : Format.formatter -> t -> unit
