(** A chemical reaction network: an interned species table, a list of
    reactions over those species, and initial concentrations.

    Networks are built incrementally — the synthesis layers (modules, clock,
    sequential designs) all add species and reactions into one shared
    network — and then handed, immutable in practice, to the simulators. *)

type t

val create : unit -> t

val species : t -> string -> int
(** Intern a species name, returning its index; idempotent. Raises
    [Invalid_argument] on the empty string or names containing whitespace,
    ['#'], ['>'], ['{'] or ['}'] (which would break the text format). *)

val find_species : t -> string -> int option

val species_name : t -> int -> string
(** Raises [Invalid_argument] on an out-of-range index. *)

val n_species : t -> int

val n_reactions : t -> int

val add_reaction : t -> Reaction.t -> unit
(** Raises [Invalid_argument] if the reaction mentions a species index not
    interned in this network. *)

val reactions : t -> Reaction.t array
(** In insertion order. The array is fresh; mutating it does not affect the
    network. *)

val set_init : t -> int -> float -> unit
(** Set the initial concentration (or molecular count) of a species.
    Raises [Invalid_argument] if negative or out of range. Unset species
    start at [0.]. *)

val init_of : t -> int -> float

val initial_state : t -> Numeric.Vec.t
(** Fresh vector of initial concentrations, indexed by species. *)

val species_names : t -> string array

val add_to : prefix:string -> dst:t -> t -> (int -> int)
(** [add_to ~prefix ~dst src] merges [src] into [dst], prefixing every
    species name of [src] with [prefix] (empty prefix merges by name:
    same-named species unify). Initial concentrations of merged species are
    added. Returns the re-indexing function from [src] indices to [dst]
    indices. *)

val stoichiometry : t -> Numeric.Mat.t
(** The [n_species] x [n_reactions] net stoichiometry matrix. *)

val pp : Format.formatter -> t -> unit
(** Full textual form, parseable by {!Parser}. *)

val to_string : t -> string
