lib/crn/parser.mli: Network
