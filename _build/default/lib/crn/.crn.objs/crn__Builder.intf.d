lib/crn/builder.mli: Network Rates
