lib/crn/slice.mli: Network
