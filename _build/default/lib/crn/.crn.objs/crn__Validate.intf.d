lib/crn/validate.mli: Format Network
