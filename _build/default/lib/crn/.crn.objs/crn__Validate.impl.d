lib/crn/validate.ml: Array Format List Network Reaction
