lib/crn/parser.ml: List Network Printf Rates Reaction String
