lib/crn/conservation.mli: Network Numeric
