lib/crn/network.ml: Array Format Hashtbl List Numeric Printf Reaction String
