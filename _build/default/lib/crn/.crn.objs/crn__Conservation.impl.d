lib/crn/conservation.ml: Array Float List Network Numeric Printf Reaction
