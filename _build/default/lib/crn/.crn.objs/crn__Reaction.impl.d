lib/crn/reaction.ml: Format Hashtbl List Option Rates
