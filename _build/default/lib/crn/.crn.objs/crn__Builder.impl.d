lib/crn/builder.ml: Network Rates Reaction
