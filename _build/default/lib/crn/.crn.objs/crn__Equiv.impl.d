lib/crn/equiv.ml: Array Digest Hashtbl List Network Option Printf Rates Reaction String
