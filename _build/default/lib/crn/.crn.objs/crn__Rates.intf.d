lib/crn/rates.mli: Format
