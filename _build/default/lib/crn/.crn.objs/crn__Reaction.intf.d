lib/crn/reaction.mli: Format Rates
