lib/crn/network.mli: Format Numeric Reaction
