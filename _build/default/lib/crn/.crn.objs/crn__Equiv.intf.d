lib/crn/equiv.mli: Network
