lib/crn/slice.ml: Array Fun Hashtbl List Network Printf Reaction
