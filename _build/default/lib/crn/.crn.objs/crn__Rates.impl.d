lib/crn/rates.ml: Format
