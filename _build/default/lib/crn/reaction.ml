type side = (int * int) list

type t = {
  reactants : side;
  products : side;
  rate : Rates.t;
  label : string option;
}

let normalize_side entries =
  List.iter
    (fun (s, c) ->
      if c <= 0 then invalid_arg "Reaction: coefficient must be positive";
      if s < 0 then invalid_arg "Reaction: negative species index")
    entries;
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (s, c) ->
      let prev = Option.value ~default:0 (Hashtbl.find_opt tbl s) in
      Hashtbl.replace tbl s (prev + c))
    entries;
  Hashtbl.fold (fun s c acc -> (s, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let make ?label ~reactants ~products rate =
  let reactants = normalize_side reactants in
  let products = normalize_side products in
  if reactants = [] && products = [] then
    invalid_arg "Reaction: both sides empty";
  { reactants; products; rate; label }

let order r = List.fold_left (fun acc (_, c) -> acc + c) 0 r.reactants

let net_stoich r =
  let tbl = Hashtbl.create 8 in
  let bump sign (s, c) =
    let prev = Option.value ~default:0 (Hashtbl.find_opt tbl s) in
    Hashtbl.replace tbl s (prev + (sign * c))
  in
  List.iter (bump (-1)) r.reactants;
  List.iter (bump 1) r.products;
  Hashtbl.fold (fun s c acc -> if c = 0 then acc else (s, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let species r =
  List.map fst r.reactants @ List.map fst r.products
  |> List.sort_uniq compare

let is_catalytic_in r s =
  let coeff side = Option.value ~default:0 (List.assoc_opt s side) in
  let c = coeff r.reactants in
  c > 0 && c = coeff r.products

let rename f r =
  let on_side side = normalize_side (List.map (fun (s, c) -> (f s, c)) side) in
  { r with reactants = on_side r.reactants; products = on_side r.products }

let equal a b =
  a.reactants = b.reactants && a.products = b.products && a.rate = b.rate

let pp_side names fmt = function
  | [] -> Format.pp_print_string fmt "0"
  | side ->
      List.iteri
        (fun i (s, c) ->
          if i > 0 then Format.pp_print_string fmt " + ";
          if c = 1 then Format.pp_print_string fmt (names s)
          else Format.fprintf fmt "%d %s" c (names s))
        side

let pp ~names fmt r =
  Format.fprintf fmt "%a ->{%a} %a" (pp_side names) r.reactants Rates.pp
    r.rate (pp_side names) r.products;
  match r.label with
  | None -> ()
  | Some l -> Format.fprintf fmt "  # %s" l
