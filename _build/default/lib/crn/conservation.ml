let laws net =
  let s = Network.stoichiometry net in
  Numeric.Lu.nullspace (Numeric.Mat.transpose s)

let is_invariant ?(eps = 1e-9) net w =
  if Array.length w <> Network.n_species net then
    invalid_arg "Conservation.is_invariant: weight dimension mismatch";
  Array.for_all
    (fun r ->
      let change =
        List.fold_left
          (fun acc (sp, c) -> acc +. (w.(sp) *. float_of_int c))
          0. (Reaction.net_stoich r)
      in
      Float.abs change <= eps)
    (Network.reactions net)

let weighted_total w state = Numeric.Vec.dot w state

let uniform_over net names =
  let w = Array.make (Network.n_species net) 0. in
  List.iter
    (fun name ->
      match Network.find_species net name with
      | Some i -> w.(i) <- 1.
      | None ->
          invalid_arg
            (Printf.sprintf "Conservation.uniform_over: unknown species %S"
               name))
    names;
  w
