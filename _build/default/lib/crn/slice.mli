(** Cone-of-influence slicing: extract the subnetwork that can affect a
    set of species of interest.

    Debugging a 60-species synthesized design usually means staring at the
    handful of reactions that can actually move the species you care
    about. A reaction {e influences} a species if the species appears among
    its products or reactants (including catalytically — a catalyst's
    concentration gates the rate); influence propagates backwards through
    reactants. *)

val influencing : Network.t -> string list -> int list
(** Indices of all species that can (transitively) influence the named
    ones, including the named species themselves. Raises
    [Invalid_argument] for unknown names. *)

val extract : Network.t -> string list -> Network.t
(** A fresh network containing the influencing species (same names, same
    initial concentrations) and every reaction of the original that
    net-changes one of them. Simulating the slice reproduces the named
    species' dynamics exactly, because every omitted reaction could not
    have reached them. Passenger byproducts of kept reactions also appear,
    but only the influencing species' trajectories are guaranteed. *)

val reaction_indices : Network.t -> string list -> int list
(** The (original) indices of the reactions kept by {!extract}, in order. *)
