(** Convenience DSL for constructing networks.

    A builder is a view of a {!Network.t} together with a hierarchical name
    prefix, so that synthesized blocks (latches, counters, filter taps…)
    get disjoint species namespaces while still sharing global species such
    as clock phases and absence indicators. *)

type t

val on : Network.t -> t
(** Root builder with the empty prefix. *)

val network : t -> Network.t

val scoped : t -> string -> t
(** [scoped b "ctr"] prefixes species created through it with ["ctr."];
    nesting concatenates ("ctr.bit0."). *)

val species : t -> string -> int
(** Intern a species under the builder's prefix. *)

val global : t -> string -> int
(** Intern a species ignoring the prefix (for shared/global species). *)

val init : t -> int -> float -> unit
(** Set initial concentration. *)

val name : t -> int -> string

val react :
  ?label:string -> t -> Rates.t -> (int * int) list -> (int * int) list -> unit
(** [react b rate reactants products] adds a reaction. *)

val fast : ?label:string -> t -> (int * int) list -> (int * int) list -> unit
val slow : ?label:string -> t -> (int * int) list -> (int * int) list -> unit

val source : ?label:string -> t -> Rates.t -> int -> unit
(** Zero-order generation [0 -> X] (the absence-indicator generators). *)

val decay : ?label:string -> t -> Rates.t -> int -> unit
(** [X -> 0]. *)

val transfer : ?label:string -> t -> Rates.t -> int -> int -> unit
(** [X -> Y]. *)

val transfer_cat :
  ?label:string -> t -> Rates.t -> cat:int -> int -> int -> unit
(** [X + C -> Y + C]: transfer enabled by the presence of a catalyst (the
    synchronous latching primitive, with a clock phase as [cat]). *)

val consume_by :
  ?label:string -> t -> Rates.t -> by:int -> int -> unit
(** [I + S -> S]: species [I] consumed catalytically by [S] (how signal
    molecules mop up their absence indicator). *)
