exception Parse_error of int * string

let fail line msg = raise (Parse_error (line, msg))

let strip_comment line =
  match String.index_opt line '#' with
  | None -> line
  | Some i -> String.sub line 0 i

let tokens_of s =
  String.split_on_char ' ' s |> List.filter (fun t -> t <> "")

(* "fast", "slow", optionally "*<scale>" suffix. *)
let parse_rate lineno s =
  let category, rest =
    if String.length s >= 4 && String.sub s 0 4 = "fast" then
      (Rates.Fast, String.sub s 4 (String.length s - 4))
    else if String.length s >= 4 && String.sub s 0 4 = "slow" then
      (Rates.Slow, String.sub s 4 (String.length s - 4))
    else fail lineno (Printf.sprintf "unknown rate category in %S" s)
  in
  let scale =
    if rest = "" then 1.
    else if String.length rest > 1 && rest.[0] = '*' then
      match float_of_string_opt (String.sub rest 1 (String.length rest - 1)) with
      | Some x when x > 0. -> x
      | _ -> fail lineno (Printf.sprintf "bad rate scale in %S" s)
    else fail lineno (Printf.sprintf "bad rate suffix in %S" s)
  in
  { Rates.category; scale }

(* A side is "0" or a "+"-separated list of [coeff] name terms. *)
let parse_side net lineno s =
  let s = String.trim s in
  if s = "0" || s = "" then []
  else
    String.split_on_char '+' s
    |> List.map (fun term ->
           match tokens_of (String.trim term) with
           | [ name ] -> (Network.species net name, 1)
           | [ coeff; name ] -> (
               match int_of_string_opt coeff with
               | Some c when c > 0 -> (Network.species net name, c)
               | _ ->
                   fail lineno
                     (Printf.sprintf "bad coefficient %S" coeff))
           | _ -> fail lineno (Printf.sprintf "bad term %S" term))

(* index of the first occurrence of "->{", if any *)
let find_arrow line =
  let n = String.length line in
  let rec go i =
    if i + 2 >= n then None
    else if line.[i] = '-' && line.[i + 1] = '>' && line.[i + 2] = '{' then
      Some i
    else go (i + 1)
  in
  go 0

(* index of the first occurrence of "<->{", if any *)
let find_rev_arrow line =
  let n = String.length line in
  let rec go i =
    if i + 3 >= n then None
    else if
      line.[i] = '<' && line.[i + 1] = '-' && line.[i + 2] = '>'
      && line.[i + 3] = '{'
    then Some i
    else go (i + 1)
  in
  go 0

(* LHS <->{fwd}{rev} RHS : sugar for the two one-way reactions *)
let parse_reversible net lineno line i =
  let j1 = i + 3 in
  match String.index_from_opt line j1 '}' with
  | None -> fail lineno "unterminated forward rate"
  | Some k1 ->
      if k1 + 1 >= String.length line || line.[k1 + 1] <> '{' then
        fail lineno "reversible reaction needs two rates: <->{fwd}{rev}"
      else begin
        match String.index_from_opt line (k1 + 1) '}' with
        | None -> fail lineno "unterminated reverse rate"
        | Some k2 ->
            let lhs = String.sub line 0 i in
            let fwd_str = String.sub line (j1 + 1) (k1 - j1 - 1) in
            let rev_str = String.sub line (k1 + 2) (k2 - k1 - 2) in
            let rhs =
              String.sub line (k2 + 1) (String.length line - k2 - 1)
            in
            let fwd = parse_rate lineno (String.trim fwd_str) in
            let rev = parse_rate lineno (String.trim rev_str) in
            let reactants = parse_side net lineno lhs in
            let products = parse_side net lineno rhs in
            (try
               Network.add_reaction net
                 (Reaction.make ~reactants ~products fwd);
               Network.add_reaction net
                 (Reaction.make ~reactants:products ~products:reactants rev)
             with Invalid_argument m -> fail lineno m)
      end

let parse_reaction net lineno line =
  match find_rev_arrow line with
  | Some i -> parse_reversible net lineno line i
  | None ->
  let arrow =
    match find_arrow line with
    | None -> None
    | Some i -> (
        match String.index_from_opt line (i + 2) '}' with
        | Some k -> Some (i, i + 2, k)
        | None -> None)
  in
  match arrow with
  | None -> fail lineno "expected a reaction of the form LHS ->{rate} RHS"
  | Some (i, j, k) ->
      let lhs = String.sub line 0 i in
      let rate_str = String.sub line (j + 1) (k - j - 1) in
      let rhs = String.sub line (k + 1) (String.length line - k - 1) in
      let rate = parse_rate lineno (String.trim rate_str) in
      let reactants = parse_side net lineno lhs in
      let products = parse_side net lineno rhs in
      (try Network.add_reaction net (Reaction.make ~reactants ~products rate)
       with Invalid_argument m -> fail lineno m)

let parse_line net lineno raw =
  let line = String.trim (strip_comment raw) in
  if line = "" then ()
  else
    match tokens_of line with
    | [ "init"; name; value ] -> (
        match float_of_string_opt value with
        | Some x when x >= 0. ->
            Network.set_init net (Network.species net name) x
        | _ -> fail lineno (Printf.sprintf "bad initial value %S" value))
    | "init" :: _ -> fail lineno "init expects: init <species> <value>"
    | _ -> parse_reaction net lineno line

let network_of_string s =
  let net = Network.create () in
  let lines = String.split_on_char '\n' s in
  List.iteri (fun i line -> parse_line net (i + 1) line) lines;
  net

let network_of_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  network_of_string content

let roundtrip net = network_of_string (Network.to_string net)
