(** A single chemical reaction.

    Species are integer indices into the owning {!Network}'s species table.
    Stoichiometric coefficients on each side are positive integers;
    a species may appear on both sides (a catalyst). The empty reactant list
    denotes a zero-order source (the paper's absence-indicator generators);
    the empty product list denotes pure consumption. *)

type side = (int * int) list
(** Association list [species, coefficient], coefficient > 0, species
    strictly increasing. Use {!normalize_side} to obtain this form. *)

type t = private {
  reactants : side;
  products : side;
  rate : Rates.t;
  label : string option;
}

val make : ?label:string -> reactants:(int * int) list -> products:(int * int) list -> Rates.t -> t
(** Build a reaction; both sides are normalized (duplicates merged, sorted).
    Raises [Invalid_argument] on a non-positive coefficient or negative
    species index, or if both sides are empty. *)

val order : t -> int
(** Total molecularity of the reactant side (0 for a source). *)

val net_stoich : t -> (int * int) list
(** Net change per species (products minus reactants), omitting zeros;
    sorted by species. A catalyst does not appear. *)

val species : t -> int list
(** All species mentioned, sorted, without duplicates. *)

val is_catalytic_in : t -> int -> bool
(** [is_catalytic_in r s]: [s] appears with equal coefficient on both
    sides. *)

val rename : (int -> int) -> t -> t
(** Apply a species re-indexing (used when merging networks). *)

val equal : t -> t -> bool
(** Structural equality ignoring the label. *)

val normalize_side : (int * int) list -> side

val pp : names:(int -> string) -> Format.formatter -> t -> unit
(** Print as e.g. ["X + 2 Y ->{fast} Z"]. *)
