type t = {
  compiled : Crn.Network.t;
  fuel_species : string list;
  n_formal_reactions : int;
  c_max : float;
}

exception Not_compilable of string

let q_max = Crn.Rates.fast_scaled 10.

let scaled_by_cmax rate c_max =
  { rate with Crn.Rates.scale = rate.Crn.Rates.scale /. c_max }

(* the reactant side as an explicit multiset list, e.g. 2A -> [A; A] *)
let expand side =
  List.concat_map (fun (s, c) -> List.init c (fun _ -> s)) side

let translate ?(c_max = 10_000.) src =
  if c_max <= 0. then invalid_arg "Translate.translate: c_max must be positive";
  let dst = Crn.Network.create () in
  (* formal species keep their names and initial concentrations *)
  let formal =
    Array.init (Crn.Network.n_species src) (fun i ->
        let j = Crn.Network.species dst (Crn.Network.species_name src i) in
        Crn.Network.set_init dst j (Crn.Network.init_of src i);
        j)
  in
  let fuels = ref [] in
  let fuel name =
    let s = Crn.Network.species dst name in
    Crn.Network.set_init dst s c_max;
    fuels := name :: !fuels;
    s
  in
  let add ?label reactants products rate =
    Crn.Network.add_reaction dst
      (Crn.Reaction.make ?label ~reactants ~products rate)
  in
  let reactions = Crn.Network.reactions src in
  Array.iteri
    (fun i r ->
      let prefix = Printf.sprintf "dsd.r%d." i in
      let aux name = Crn.Network.species dst (prefix ^ name) in
      let products =
        List.map (fun (s, c) -> (formal.(s), c)) r.Crn.Reaction.products
      in
      let rate = r.Crn.Reaction.rate in
      let waste = aux "W" in
      match expand r.Crn.Reaction.reactants with
      | [] ->
          (* unbuffered gate decay releases products at ~k while fuel
             lasts *)
          let g = fuel (prefix ^ "G") in
          add
            ~label:(Printf.sprintf "r%d: source gate" i)
            [ (g, 1) ]
            (products @ [ (waste, 1) ])
            (scaled_by_cmax rate c_max)
      | [ a ] ->
          let g = fuel (prefix ^ "G") and t = fuel (prefix ^ "T") in
          let o = aux "O" in
          add
            ~label:(Printf.sprintf "r%d: bind" i)
            [ (formal.(a), 1); (g, 1) ]
            [ (o, 1) ]
            (scaled_by_cmax rate c_max);
          add
            ~label:(Printf.sprintf "r%d: translate" i)
            [ (o, 1); (t, 1) ]
            (products @ [ (waste, 1) ])
            q_max
      | [ a; b ] ->
          let j = fuel (prefix ^ "J") and t = fuel (prefix ^ "T") in
          let h = aux "H" and o = aux "O" in
          (* first binding keeps the formal rate constant; at quasi-steady
             state the intermediate H satisfies
             flux = q_b H B = k A B c_max q_b / (q_u + q_b B), which equals
             the formal k A B precisely when q_u = q_b c_max (and B is
             small relative to c_max) *)
          add
            ~label:(Printf.sprintf "r%d: join first" i)
            [ (formal.(a), 1); (j, 1) ]
            [ (h, 1) ]
            rate;
          add
            ~label:(Printf.sprintf "r%d: unbind" i)
            [ (h, 1) ]
            [ (formal.(a), 1); (j, 1) ]
            { q_max with Crn.Rates.scale = q_max.Crn.Rates.scale *. c_max };
          add
            ~label:(Printf.sprintf "r%d: join second" i)
            [ (h, 1); (formal.(b), 1) ]
            [ (o, 1) ]
            q_max;
          add
            ~label:(Printf.sprintf "r%d: fork" i)
            [ (o, 1); (t, 1) ]
            (products @ [ (waste, 1) ])
            q_max
      | _ ->
          raise
            (Not_compilable
               (Printf.sprintf
                  "reaction #%d has molecularity %d (> 2); no direct DNA \
                   strand-displacement implementation"
                  i (Crn.Reaction.order r))))
    reactions;
  {
    compiled = dst;
    fuel_species = List.rev !fuels;
    n_formal_reactions = Array.length reactions;
    c_max;
  }

let fuel_remaining t state =
  List.fold_left
    (fun acc name ->
      match Crn.Network.find_species t.compiled name with
      | None -> acc
      | Some s -> Float.min acc (state.(s) /. t.c_max))
    1. t.fuel_species

let inventory t =
  let net = t.compiled in
  let signal name =
    { Domain.label = name; strands = [ Domain.signal_strand ~species_name:name ] }
  in
  (* formal species = those not under the dsd. namespace *)
  let is_aux name = String.length name >= 4 && String.sub name 0 4 = "dsd." in
  let formal_complexes =
    List.filter_map
      (fun i ->
        let name = Crn.Network.species_name net i in
        if is_aux name then None else Some (signal name))
      (List.init (Crn.Network.n_species net) (fun i -> i))
  in
  let fuel_complexes =
    List.map
      (fun name ->
        (* a fuel complex: a bound bottom strand plus its output strand *)
        {
          Domain.label = name;
          strands =
            [
              Domain.signal_strand ~species_name:name;
              [ Domain.toehold ("t." ^ name ^ ".out");
                Domain.recognition ("d." ^ name ^ ".out");
              ];
            ];
        })
      t.fuel_species
  in
  formal_complexes @ fuel_complexes
