(** Explicit gate structures for the buffered-gate translation.

    {!Translate} emits the compiled {e reactions}; this module builds, for
    each formal reaction, the corresponding {e gate structure}: the fuel
    complexes (with their strand composition) and the cascade of
    displacement steps the gate performs. The test suite cross-checks that
    the steps enumerated here are exactly the reactions {!Translate} emits
    — the structural view and the kinetic view of the compilation must
    agree. *)

type kind =
  | Source  (** order 0: a gate that falls apart, releasing products *)
  | Unary  (** order 1: bind, then translate *)
  | Binary  (** order 2: join (reversibly), join again, then fork *)

type step = {
  label : string;
  consumed : (string * int) list;  (** species name, coefficient *)
  produced : (string * int) list;
  rate : Crn.Rates.t;
}

type t = {
  reaction_index : int;
  kind : kind;
  complexes : Domain.complex list;  (** this gate's fuel complexes *)
  steps : step list;  (** the displacement cascade, in firing order *)
}

val of_reaction :
  c_max:float -> index:int -> names:(int -> string) -> Crn.Reaction.t -> t
(** Structure for one formal reaction ([names] maps formal species indices
    to their names). Raises {!Translate.Not_compilable} above order 2. *)

val all : ?c_max:float -> Crn.Network.t -> t list
(** One gate per reaction of a formal network ([c_max] default 10000). *)

val strand_count : t -> int
(** Total strands across the gate's fuel complexes: 2 for a source gate,
    [3 + product units] for unary, [3 + product units] for binary (join +
    fork translator). *)

val pp : Format.formatter -> t -> unit
