(** Behavioural verification of a DSD compilation: simulate the formal
    network and its compiled form under the same rate environment and
    compare the trajectories of the formal species (which keep their names
    through compilation). *)

type report = {
  max_abs_deviation : float;
      (** worst pointwise difference over compared species and times; for
          systems with sharp transitions this is dominated by any timing
          shift the compilation introduces, so read it together with
          [final_deviation] *)
  worst_species : string;
  final_deviation : float;  (** worst difference of the [t1] end states *)
  fuel_remaining : float;  (** worst fractional fuel stock at the end *)
}

val compare :
  ?env:Crn.Rates.env ->
  ?method_:Ode.Driver.method_ ->
  ?species:string list ->
  ?grid:int ->
  t1:float ->
  Crn.Network.t ->
  Translate.t ->
  report
(** [compare ~t1 formal compiled] simulates both networks to [t1]
    (default method {!Ode.Driver.Rosenbrock}) and reports the maximum
    pointwise deviation over a [grid]-point uniform grid (default 200).
    [species] restricts the comparison (default: every formal species).
    Raises [Invalid_argument] for unknown species names. *)
