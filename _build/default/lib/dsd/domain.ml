type kind = Toehold | Recognition
type domain = { name : string; kind : kind }
type strand = domain list
type complex = { label : string; strands : strand list }

let toehold name = { name; kind = Toehold }
let recognition name = { name; kind = Recognition }

let signal_strand ~species_name =
  [ toehold ("t." ^ species_name); recognition ("d." ^ species_name) ]

let strand_length s = List.length s

let complex_domains c = List.concat c.strands

let distinct_domains complexes =
  List.concat_map complex_domains complexes
  |> List.map (fun d -> d.name)
  |> List.sort_uniq compare

let pp_strand fmt s =
  Format.fprintf fmt "<";
  List.iteri
    (fun i d ->
      if i > 0 then Format.fprintf fmt " ";
      Format.fprintf fmt "%s%s" d.name
        (match d.kind with Toehold -> "^" | Recognition -> ""))
    s;
  Format.fprintf fmt ">"

let pp_complex fmt c =
  Format.fprintf fmt "%s:" c.label;
  List.iter (fun s -> Format.fprintf fmt " %a" pp_strand s) c.strands
