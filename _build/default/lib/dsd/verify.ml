type report = {
  max_abs_deviation : float;
  worst_species : string;
  final_deviation : float;
  fuel_remaining : float;
}

let compare ?env ?(method_ = Ode.Driver.Rosenbrock) ?species ?(grid = 200)
    ~t1 formal (translation : Translate.t) =
  let names =
    match species with
    | Some l ->
        List.iter
          (fun n ->
            if Crn.Network.find_species formal n = None then
              invalid_arg
                (Printf.sprintf "Verify.compare: unknown species %S" n))
          l;
        l
    | None -> Array.to_list (Crn.Network.species_names formal)
  in
  let tr_formal = Ode.Driver.simulate ~method_ ?env ~thin:5 ~t1 formal in
  let tr_dsd =
    Ode.Driver.simulate ~method_ ?env ~thin:5 ~t1 translation.Translate.compiled
  in
  let worst = ref 0. and worst_species = ref "" and final = ref 0. in
  List.iter
    (fun name ->
      let d =
        Numeric.Interp.max_abs_diff
          ~times_a:(Ode.Trace.times tr_formal)
          ~values_a:(Ode.Trace.column_named tr_formal name)
          ~times_b:(Ode.Trace.times tr_dsd)
          ~values_b:(Ode.Trace.column_named tr_dsd name)
          ~n:grid
      in
      if d > !worst then begin
        worst := d;
        worst_species := name
      end;
      let fd =
        Float.abs
          (Ode.Trace.final_value tr_formal name
          -. Ode.Trace.final_value tr_dsd name)
      in
      if fd > !final then final := fd)
    names;
  {
    max_abs_deviation = !worst;
    worst_species = !worst_species;
    final_deviation = !final;
    fuel_remaining =
      Translate.fuel_remaining translation (Ode.Trace.last_state tr_dsd);
  }
