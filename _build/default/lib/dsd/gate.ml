type kind = Source | Unary | Binary

type step = {
  label : string;
  consumed : (string * int) list;
  produced : (string * int) list;
  rate : Crn.Rates.t;
}

type t = {
  reaction_index : int;
  kind : kind;
  complexes : Domain.complex list;
  steps : step list;
}

let expand side = List.concat_map (fun (s, c) -> List.init c (fun _ -> s)) side

let strand name =
  [ Domain.toehold ("t." ^ name); Domain.recognition ("d." ^ name) ]

(* a fuel complex: its own bound bottom strand plus one strand per thing it
   will release *)
let fuel_complex label releases =
  { Domain.label; strands = strand label :: List.map strand releases }

let of_reaction ~c_max ~index ~names (r : Crn.Reaction.t) =
  let prefix = Printf.sprintf "dsd.r%d." index in
  let aux n = prefix ^ n in
  let rate = r.Crn.Reaction.rate in
  let scaled = { rate with Crn.Rates.scale = rate.Crn.Rates.scale /. c_max } in
  let products =
    List.map (fun (s, c) -> (names s, c)) r.Crn.Reaction.products
  in
  let product_release = expand r.Crn.Reaction.products |> List.map names in
  let waste = (aux "W", 1) in
  match expand r.Crn.Reaction.reactants with
  | [] ->
      {
        reaction_index = index;
        kind = Source;
        complexes = [ fuel_complex (aux "G") product_release ];
        steps =
          [
            {
              label = Printf.sprintf "r%d: source gate" index;
              consumed = [ (aux "G", 1) ];
              produced = products @ [ waste ];
              rate = scaled;
            };
          ];
      }
  | [ a ] ->
      {
        reaction_index = index;
        kind = Unary;
        complexes =
          [
            fuel_complex (aux "G") [ aux "O" ];
            fuel_complex (aux "T") product_release;
          ];
        steps =
          [
            {
              label = Printf.sprintf "r%d: bind" index;
              consumed = [ (names a, 1); (aux "G", 1) ];
              produced = [ (aux "O", 1) ];
              rate = scaled;
            };
            {
              label = Printf.sprintf "r%d: translate" index;
              consumed = [ (aux "O", 1); (aux "T", 1) ];
              produced = products @ [ waste ];
              rate = Translate.q_max;
            };
          ];
      }
  | [ a; b ] ->
      let unbind_rate =
        {
          Translate.q_max with
          Crn.Rates.scale = Translate.q_max.Crn.Rates.scale *. c_max;
        }
      in
      {
        reaction_index = index;
        kind = Binary;
        complexes =
          [
            fuel_complex (aux "J") [ aux "O" ];
            fuel_complex (aux "T") product_release;
          ];
        steps =
          [
            {
              label = Printf.sprintf "r%d: join first" index;
              consumed = [ (names a, 1); (aux "J", 1) ];
              produced = [ (aux "H", 1) ];
              rate;
            };
            {
              label = Printf.sprintf "r%d: unbind" index;
              consumed = [ (aux "H", 1) ];
              produced = [ (names a, 1); (aux "J", 1) ];
              rate = unbind_rate;
            };
            {
              label = Printf.sprintf "r%d: join second" index;
              consumed = [ (aux "H", 1); (names b, 1) ];
              produced = [ (aux "O", 1) ];
              rate = Translate.q_max;
            };
            {
              label = Printf.sprintf "r%d: fork" index;
              consumed = [ (aux "O", 1); (aux "T", 1) ];
              produced = products @ [ waste ];
              rate = Translate.q_max;
            };
          ];
      }
  | _ ->
      raise
        (Translate.Not_compilable
           (Printf.sprintf
              "reaction #%d has molecularity %d (> 2); no direct DNA \
               strand-displacement implementation"
              index (Crn.Reaction.order r)))

let all ?(c_max = 10_000.) net =
  let names s = Crn.Network.species_name net s in
  Array.to_list
    (Array.mapi
       (fun index r -> of_reaction ~c_max ~index ~names r)
       (Crn.Network.reactions net))

let strand_count g =
  List.fold_left
    (fun acc c -> acc + List.length c.Domain.strands)
    0 g.complexes

let pp fmt g =
  Format.fprintf fmt "@[<v>gate r%d (%s):@," g.reaction_index
    (match g.kind with
    | Source -> "source"
    | Unary -> "unary"
    | Binary -> "binary");
  List.iter (fun c -> Format.fprintf fmt "  %a@," Domain.pp_complex c) g.complexes;
  List.iter
    (fun s ->
      let side l =
        String.concat " + "
          (List.map
             (fun (n, c) -> if c = 1 then n else Printf.sprintf "%d %s" c n)
             l)
      in
      Format.fprintf fmt "  %s: %s ->{%a} %s@," s.label (side s.consumed)
        Crn.Rates.pp s.rate (side s.produced))
    g.steps;
  Format.fprintf fmt "@]"
