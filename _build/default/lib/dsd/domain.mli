(** Domain-level DNA representation.

    DNA strand displacement systems are designed at the {e domain} level:
    a strand is a sequence of domains, each either a short {e toehold}
    (which mediates reversible binding) or a long {e recognition} domain
    (which determines identity and is displaced irreversibly). Each formal
    CRN species [X] is assigned a canonical signal strand
    [<t_X^ x_X>]; gate complexes are built from signal domains plus
    per-reaction auxiliary domains. This module provides the vocabulary the
    {!Gate} inventory and the {!Translate} compiler share. *)

type kind = Toehold | Recognition

type domain = { name : string; kind : kind }

type strand = domain list
(** 5'-to-3' sequence of domains; must be nonempty. *)

type complex = {
  label : string;
  strands : strand list;  (** one single-stranded species has one strand *)
}

val toehold : string -> domain
val recognition : string -> domain

val signal_strand : species_name:string -> strand
(** The canonical signal strand for a formal species:
    toehold [t.<name>] followed by recognition [d.<name>]. *)

val strand_length : strand -> int
(** Number of domains. *)

val complex_domains : complex -> domain list
(** All domains with duplicates, in order. *)

val distinct_domains : complex list -> string list
(** Sorted distinct domain names used across complexes. *)

val pp_strand : Format.formatter -> strand -> unit
(** E.g. [<t.X d.X>]. *)

val pp_complex : Format.formatter -> complex -> unit
