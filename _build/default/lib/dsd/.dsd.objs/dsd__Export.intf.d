lib/dsd/export.mli: Translate
