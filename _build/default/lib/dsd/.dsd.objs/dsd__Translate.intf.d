lib/dsd/translate.mli: Crn Domain Numeric
