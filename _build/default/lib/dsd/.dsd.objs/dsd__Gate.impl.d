lib/dsd/gate.ml: Array Crn Domain Format List Printf String Translate
