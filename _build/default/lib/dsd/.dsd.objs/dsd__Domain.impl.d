lib/dsd/domain.ml: Format List
