lib/dsd/domain.mli: Format
