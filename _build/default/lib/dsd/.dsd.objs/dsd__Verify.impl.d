lib/dsd/verify.ml: Array Crn Float List Numeric Ode Printf Translate
