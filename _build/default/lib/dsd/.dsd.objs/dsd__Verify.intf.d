lib/dsd/verify.mli: Crn Ode Translate
