lib/dsd/export.ml: Buffer Crn Domain Format List Printf String Translate
