lib/dsd/gate.mli: Crn Domain Format
