lib/dsd/translate.ml: Array Crn Domain Float List Printf String
