(** Compilation of formal reactions into DNA strand-displacement form
    (the two-step buffered-gate scheme of Soloveichik, Seelig & Winfree,
    PNAS 2010).

    Each formal reaction becomes a cascade of at most bimolecular steps
    against {e fuel} complexes held at a large buffer concentration
    [c_max]:

    - order 0, [0 ->k P...]: a gate slowly falls apart,
      [G_i ->(k/c_max) P... + W_i]; its initial stock [c_max] makes the
      release rate [~k] while fuel lasts;
    - order 1, [A ->k P...]: [A + G_i ->(k/c_max) O_i],
      [O_i + T_i ->(q_max) P... + W_i];
    - order 2, [A + B ->k P...]: a join–fork cascade
      [A + J_i ->(k) H_i], [H_i ->(q_max * c_max) A + J_i] (unbinding,
      which prevents sequestration of [A] while [B] is absent; its rate
      must be [q_max * c_max] for the quasi-steady-state flux
      [k A B c_max q_max / (q_max c_max + q_max B)] to reduce to the formal
      [k A B]), [H_i + B ->(q_max) O_i], [O_i + T_i ->(q_max) P... + W_i].

    With [q_max >> k] the compiled network's kinetics converge to the
    formal network's (quasi-steady-state of the intermediates). Fuel
    depletion is physical: each firing consumes one [G_i]/[J_i] and one
    [T_i], so [c_max] bounds the experiment length. [q_max] is represented
    as the fast category scaled by 10 — legitimate, since correctness never
    depends on how fast one fast reaction is relative to another.

    Formal species keep their names in the compiled network, so traces are
    directly comparable; auxiliary species live under ["dsd.r<i>."]. *)

type t = {
  compiled : Crn.Network.t;
  fuel_species : string list;  (** buffered gate/translator species *)
  n_formal_reactions : int;
  c_max : float;
}

exception Not_compilable of string
(** Raised for reactions of molecularity > 2. *)

val q_max : Crn.Rates.t
(** The gate operating rate: the fast category scaled by 10. *)

val translate : ?c_max:float -> Crn.Network.t -> t
(** Compile a network ([c_max] defaults to [10_000.]). Initial
    concentrations of formal species are preserved. *)

val fuel_remaining : t -> Numeric.Vec.t -> float
(** Smallest remaining fraction of any fuel species' initial stock in a
    compiled-network state ([1.] = untouched). *)

val inventory : t -> Domain.complex list
(** Domain-level inventory: one signal strand per formal species and the
    fuel complexes of each compiled reaction. *)
