(** Recorded simulation trajectories.

    A trace is a sequence of time points with the full state at each,
    plus species names for lookup. Built incrementally by the drivers,
    consumed by the analysis and plotting layers. *)

type t

val create : names:string array -> t

val record : t -> float -> Numeric.Vec.t -> unit
(** Append a sample (the state is copied). Times must be non-decreasing. *)

val length : t -> int

val names : t -> string array

val times : t -> float array
(** Fresh array of sample times. *)

val state_at_index : t -> int -> Numeric.Vec.t
(** Fresh copy of the recorded state at a sample index. *)

val column : t -> int -> float array
(** Time series of one species (by index). *)

val column_named : t -> string -> float array
(** Raises [Not_found] for an unknown name. *)

val species_index : t -> string -> int
(** Raises [Not_found]. *)

val value_at : t -> species:int -> float -> float
(** Linear interpolation of one species' series at an arbitrary time. *)

val last_time : t -> float
val last_state : t -> Numeric.Vec.t

val final_value : t -> string -> float
(** Last recorded value of a named species. *)

val to_csv : t -> string
(** Header [time,<species...>] then one row per sample. *)

val restrict : t -> string list -> t
(** Sub-trace containing only the named species (same times). *)
