lib/ode/dopri5.ml: Array Deriv Float List Numeric
