lib/ode/rosenbrock.mli: Deriv Numeric
