lib/ode/driver.ml: Array Crn Deriv Dopri5 Fixed List Option Printf Rosenbrock Trace
