lib/ode/fixed.mli: Deriv Numeric
