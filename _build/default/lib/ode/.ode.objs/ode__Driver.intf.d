lib/ode/driver.mli: Crn Numeric Trace
