lib/ode/fixed.ml: Array Deriv Float Numeric
