lib/ode/rosenbrock.ml: Array Deriv Float Numeric
