lib/ode/steady.mli: Crn Deriv Driver Numeric
