lib/ode/steady.ml: Crn Deriv Dopri5 Driver Fixed Float Numeric Rosenbrock
