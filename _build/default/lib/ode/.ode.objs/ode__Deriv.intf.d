lib/ode/deriv.mli: Crn Numeric
