lib/ode/trace.ml: Array Buffer List Numeric Printf
