lib/ode/trace.mli: Numeric
