lib/ode/deriv.ml: Array Crn List Numeric
