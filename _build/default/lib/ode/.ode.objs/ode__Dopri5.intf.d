lib/ode/dopri5.mli: Deriv Numeric
