type reaction = {
  k : float;
  reactant_species : int array;
  reactant_coeff : int array;
  net_species : int array;
  net_coeff : float array;
}

type t = { n : int; reactions : reaction array }

let compile env net =
  let compile_reaction r =
    let reactants = Array.of_list r.Crn.Reaction.reactants in
    let net_list = Crn.Reaction.net_stoich r in
    {
      k = Crn.Rates.value env r.Crn.Reaction.rate;
      reactant_species = Array.map fst reactants;
      reactant_coeff = Array.map snd reactants;
      net_species = Array.of_list (List.map fst net_list);
      net_coeff = Array.of_list (List.map (fun (_, c) -> float_of_int c) net_list);
    }
  in
  {
    n = Crn.Network.n_species net;
    reactions = Array.map compile_reaction (Crn.Network.reactions net);
  }

let dim sys = sys.n
let n_reactions sys = Array.length sys.reactions

let pow_int x c =
  (* c is a small positive stoichiometric coefficient *)
  match c with
  | 1 -> x
  | 2 -> x *. x
  | 3 -> x *. x *. x
  | _ -> x ** float_of_int c

let flux_of r x =
  let acc = ref r.k in
  for i = 0 to Array.length r.reactant_species - 1 do
    acc := !acc *. pow_int x.(r.reactant_species.(i)) r.reactant_coeff.(i)
  done;
  !acc

let f sys _t x dx =
  Numeric.Vec.fill dx 0.;
  Array.iter
    (fun r ->
      let v = flux_of r x in
      for i = 0 to Array.length r.net_species - 1 do
        let s = r.net_species.(i) in
        dx.(s) <- dx.(s) +. (v *. r.net_coeff.(i))
      done)
    sys.reactions

let eval sys x =
  let dx = Array.make sys.n 0. in
  f sys 0. x dx;
  dx

let jacobian sys x =
  let jac = Numeric.Mat.create sys.n sys.n 0. in
  Array.iter
    (fun r ->
      (* d flux / d x_j = k * c_j * x_j^(c_j - 1) * prod_{i<>j} x_i^c_i *)
      let m = Array.length r.reactant_species in
      for jj = 0 to m - 1 do
        let sj = r.reactant_species.(jj) in
        let cj = r.reactant_coeff.(jj) in
        let d = ref (r.k *. float_of_int cj) in
        if cj > 1 then d := !d *. pow_int x.(sj) (cj - 1);
        for ii = 0 to m - 1 do
          if ii <> jj then
            d := !d *. pow_int x.(r.reactant_species.(ii)) r.reactant_coeff.(ii)
        done;
        for i = 0 to Array.length r.net_species - 1 do
          let s = r.net_species.(i) in
          jac.(s).(sj) <- jac.(s).(sj) +. (!d *. r.net_coeff.(i))
        done
      done)
    sys.reactions;
  jac

let flux sys x i =
  if i < 0 || i >= Array.length sys.reactions then
    invalid_arg "Deriv.flux: reaction index out of range";
  flux_of sys.reactions.(i) x
