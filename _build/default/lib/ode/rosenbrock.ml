type stats = { steps : int; rejected : int; factorizations : int }

let gamma = 1. +. (1. /. sqrt 2.)

(* ROS2 (Verwer et al.): with W = I - gamma h J,
     W k1 = f(x)
     W k2 = f(x + h k1) - 2 k1
     x' = x + (h/2) (3 k1 + k2)
   The first-order embedded solution x + h k1 yields the error estimate
   (h/2) (k1 + k2). *)
let integrate ?(rtol = 1e-4) ?(atol = 1e-7) ?h0 ?(max_steps = 5_000_000)
    ~t0 ~t1 ~on_sample sys x0 =
  if t1 < t0 then invalid_arg "Rosenbrock.integrate: t1 < t0";
  let n = Deriv.dim sys in
  let x = Array.copy x0 in
  let fx = Array.make n 0. in
  let t = ref t0 in
  let h = ref (match h0 with Some h -> h | None -> (t1 -. t0) /. 100.) in
  let steps = ref 0 and rejected = ref 0 and factorizations = ref 0 in
  on_sample !t x;
  while !t < t1 -. 1e-12 do
    if !steps >= max_steps then failwith "Rosenbrock: max step count exceeded";
    if !h < 1e-14 *. Float.max 1. (Float.abs !t) then
      failwith "Rosenbrock: step size underflow";
    let hh = Float.min !h (t1 -. !t) in
    let jac = Deriv.jacobian sys x in
    let w =
      Numeric.Mat.init n n (fun i j ->
          (if i = j then 1. else 0.) -. (gamma *. hh *. jac.(i).(j)))
    in
    (match Numeric.Lu.decompose w with
    | exception Numeric.Lu.Singular ->
        (* halve the step: a singular W means gamma*h*J hit an eigenvalue *)
        h := hh /. 2.;
        incr rejected
    | lu ->
        incr factorizations;
        Deriv.f sys !t x fx;
        let k1 = Numeric.Lu.solve lu fx in
        let x1 = Array.copy x in
        Numeric.Vec.axpy hh k1 x1;
        Deriv.f sys (!t +. hh) x1 fx;
        let rhs2 = Array.init n (fun i -> fx.(i) -. (2. *. k1.(i))) in
        let k2 = Numeric.Lu.solve lu rhs2 in
        let xnew =
          Array.init n (fun i ->
              x.(i) +. (hh /. 2. *. ((3. *. k1.(i)) +. k2.(i))))
        in
        let err =
          let acc = ref 0. in
          for i = 0 to n - 1 do
            let e = hh /. 2. *. (k1.(i) +. k2.(i)) in
            let sc =
              atol +. (rtol *. Float.max (Float.abs x.(i)) (Float.abs xnew.(i)))
            in
            let r = e /. sc in
            acc := !acc +. (r *. r)
          done;
          sqrt (!acc /. float_of_int n)
        in
        if err <= 1. then begin
          t := !t +. hh;
          Numeric.Vec.clamp_nonneg xnew;
          Numeric.Vec.blit ~src:xnew ~dst:x;
          incr steps;
          on_sample !t x
        end
        else incr rejected;
        let factor =
          if err = 0. then 3.
          else Float.min 3. (Float.max 0.2 (0.9 /. sqrt err))
        in
        h := hh *. factor)
  done;
  (Array.copy x, { steps = !steps; rejected = !rejected; factorizations = !factorizations })
