let is_steady ?(f_tol = 1e-7) sys x =
  Numeric.Vec.norm_inf (Deriv.eval sys x) <= f_tol

let find ?(env = Crn.Rates.default_env) ?(method_ = Driver.Dopri5)
    ?(f_tol = 1e-7) ?(chunk = 10.) ?(t_max = 1000.) net =
  if chunk <= 0. then invalid_arg "Steady.find: chunk must be positive";
  let sys = Deriv.compile env net in
  let rec go t x =
    if is_steady ~f_tol sys x then Some (t, x)
    else if t >= t_max then None
    else begin
      let t' = Float.min t_max (t +. chunk) in
      let on_sample _ _ = () in
      let x' =
        match method_ with
        | Driver.Dopri5 ->
            fst (Dopri5.integrate ~t0:t ~t1:t' ~on_sample sys x)
        | Driver.Rosenbrock ->
            fst (Rosenbrock.integrate ~t0:t ~t1:t' ~on_sample sys x)
        | Driver.Rk4 h ->
            Fixed.integrate ~step:Fixed.rk4_step ~h ~t0:t ~t1:t' ~on_sample
              sys x
      in
      go t' x'
    end
  in
  go 0. (Crn.Network.initial_state net)
