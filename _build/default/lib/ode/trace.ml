type t = {
  names : string array;
  mutable times : float array;
  mutable states : float array array; (* row per sample *)
  mutable len : int;
}

let create ~names =
  { names; times = Array.make 64 0.; states = Array.make 64 [||]; len = 0 }

let grow tr =
  let cap = Array.length tr.times in
  if tr.len = cap then begin
    let times = Array.make (2 * cap) 0. in
    Array.blit tr.times 0 times 0 cap;
    tr.times <- times;
    let states = Array.make (2 * cap) [||] in
    Array.blit tr.states 0 states 0 cap;
    tr.states <- states
  end

let record tr t x =
  if Array.length x <> Array.length tr.names then
    invalid_arg "Trace.record: state dimension mismatch";
  if tr.len > 0 && t < tr.times.(tr.len - 1) then
    invalid_arg "Trace.record: time went backwards";
  grow tr;
  tr.times.(tr.len) <- t;
  tr.states.(tr.len) <- Array.copy x;
  tr.len <- tr.len + 1

let length tr = tr.len
let names tr = tr.names
let times tr = Array.sub tr.times 0 tr.len

let check_index tr i =
  if i < 0 || i >= tr.len then invalid_arg "Trace: sample index out of range"

let state_at_index tr i =
  check_index tr i;
  Array.copy tr.states.(i)

let column tr s =
  if s < 0 || s >= Array.length tr.names then
    invalid_arg "Trace.column: species index out of range";
  Array.init tr.len (fun i -> tr.states.(i).(s))

let species_index tr name =
  let rec go i =
    if i >= Array.length tr.names then raise Not_found
    else if tr.names.(i) = name then i
    else go (i + 1)
  in
  go 0

let column_named tr name = column tr (species_index tr name)

let value_at tr ~species t =
  Numeric.Interp.at ~times:(times tr) ~values:(column tr species) t

let nonempty tr = if tr.len = 0 then invalid_arg "Trace: empty trace"

let last_time tr =
  nonempty tr;
  tr.times.(tr.len - 1)

let last_state tr =
  nonempty tr;
  Array.copy tr.states.(tr.len - 1)

let final_value tr name =
  nonempty tr;
  tr.states.(tr.len - 1).(species_index tr name)

let to_csv tr =
  let buf = Buffer.create (tr.len * 32) in
  Buffer.add_string buf "time";
  Array.iter
    (fun n ->
      Buffer.add_char buf ',';
      Buffer.add_string buf n)
    tr.names;
  Buffer.add_char buf '\n';
  for i = 0 to tr.len - 1 do
    Buffer.add_string buf (Printf.sprintf "%.6g" tr.times.(i));
    Array.iter
      (fun x -> Buffer.add_string buf (Printf.sprintf ",%.6g" x))
      tr.states.(i);
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let restrict tr keep =
  let indices = List.map (species_index tr) keep in
  let sub = create ~names:(Array.of_list keep) in
  for i = 0 to tr.len - 1 do
    let row = Array.of_list (List.map (fun s -> tr.states.(i).(s)) indices) in
    record sub tr.times.(i) row
  done;
  sub
