(** Steady-state detection.

    Combinational molecular modules "compute" by converging: the output is
    read once the network reaches equilibrium. This module integrates in
    chunks until the derivative norm falls below a tolerance. Note that the
    clock never satisfies this — sustained oscillation is the point — so
    {!find} on a clocked design reports [None]. *)

val find :
  ?env:Crn.Rates.env ->
  ?method_:Driver.method_ ->
  ?f_tol:float ->
  ?chunk:float ->
  ?t_max:float ->
  Crn.Network.t ->
  (float * Numeric.Vec.t) option
(** [find net] is [Some (t, x)] with the first chunk boundary [t] at which
    [||dx/dt||_inf <= f_tol] (default [1e-7]), integrating in chunks of
    [chunk] (default [10.]) up to [t_max] (default [1000.]); [None] if the
    system is still moving at [t_max]. *)

val is_steady : ?f_tol:float -> Deriv.t -> Numeric.Vec.t -> bool
(** Is the derivative norm below tolerance at this state? *)
