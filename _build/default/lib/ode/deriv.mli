(** Mass-action right-hand sides.

    Compiles a {!Crn.Network.t} under a rate environment into the vector
    field of its deterministic mass-action kinetics:
    [dx_s/dt = sum_r nu_rs * k_r * prod_i x_i^(c_ri)], plus its analytic
    Jacobian for the semi-implicit integrator. The compiled form is flat
    arrays so the inner simulation loop allocates nothing per reaction. *)

type t

val compile : Crn.Rates.env -> Crn.Network.t -> t

val dim : t -> int
(** Number of species. *)

val f : t -> float -> Numeric.Vec.t -> Numeric.Vec.t -> unit
(** [f sys t x dx] writes the derivative of state [x] into [dx] (mass-action
    kinetics are autonomous; [t] is accepted for interface uniformity). *)

val eval : t -> Numeric.Vec.t -> Numeric.Vec.t
(** Allocating convenience wrapper around {!f}. *)

val jacobian : t -> Numeric.Vec.t -> Numeric.Mat.t
(** Analytic Jacobian [d f_i / d x_j] at a state. *)

val flux : t -> Numeric.Vec.t -> int -> float
(** Instantaneous flux of reaction [i] at a state (for diagnostics). *)

val n_reactions : t -> int
