type t = {
  design : Sync_design.t;
  input_name : string;
  output_name : string;
  pipeline_delay : int;
  taps : int;
}

let fast = Crn.Rates.fast

(* Halving leaves an algebraic tail in its input (2X -> Y drains X as 1/t,
   down to ~1e-4 of a sample within a cycle). There is no clock slot that is
   disjoint from both release and capture in a four-phase clock, so the tail
   is NOT cleared; it carries into the next cycle's sum as a ~0.01% leak
   that shrinks with the fast/slow separation. *)

let store_name (d : Sync_design.t) latch =
  Crn.Builder.name d.Sync_design.builder latch.Latch.store

let moving_average ?(name = "ma") (d : Sync_design.t) ~taps =
  let b = Crn.Builder.scoped d.builder name in
  let x = Crn.Builder.species b "x" in
  let out_reg = Latch.make d ~name:(name ^ ".y") in
  let (_ : int) = Latch.sink d out_reg in
  (match taps with
  | 1 -> Crn.Builder.transfer ~label:(name ^ ": pass") d.builder fast x out_reg.Latch.input
  | 2 ->
      let xa = Crn.Builder.species b "xa" and xd = Crn.Builder.species b "xd" in
      Crn.Builder.react ~label:(name ^ ": fan x") d.builder fast
        [ (x, 1) ]
        [ (xa, 1); (xd, 1) ];
      let delay = Latch.make d ~name:(name ^ ".d1") in
      Latch.feed d delay xd;
      let sum = Ri_modules.Arith.add ~rate:fast b ~name:"sum" xa delay.Latch.output in
      let yh = Ri_modules.Arith.halve ~rate:fast b ~name:"h" sum in
      Crn.Builder.transfer ~label:(name ^ ": to out") d.builder fast yh
        out_reg.Latch.input
  | 4 ->
      let xa = Crn.Builder.species b "xa" and xd = Crn.Builder.species b "xd" in
      Crn.Builder.react ~label:(name ^ ": fan x") d.builder fast
        [ (x, 1) ]
        [ (xa, 1); (xd, 1) ];
      let d1 = Latch.make d ~name:(name ^ ".d1") in
      let d2 = Latch.make d ~name:(name ^ ".d2") in
      let d3 = Latch.make d ~name:(name ^ ".d3") in
      Latch.feed d d1 xd;
      (* taps 1 and 2 both shift onward and enter the averaging tree *)
      let d1t = Crn.Builder.species b "d1t" and d2t = Crn.Builder.species b "d2t" in
      Crn.Builder.react ~label:(name ^ ": fan d1") d.builder fast
        [ (d1.Latch.output, 1) ]
        [ (d2.Latch.input, 1); (d1t, 1) ];
      Crn.Builder.react ~label:(name ^ ": fan d2") d.builder fast
        [ (d2.Latch.output, 1) ]
        [ (d3.Latch.input, 1); (d2t, 1) ];
      let s01 = Ri_modules.Arith.add ~rate:fast b ~name:"s01" xa d1t in
      let s23 =
        Ri_modules.Arith.add ~rate:fast b ~name:"s23" d2t d3.Latch.output
      in
      let h01 = Ri_modules.Arith.halve ~rate:fast b ~name:"h01" s01 in
      let h23 = Ri_modules.Arith.halve ~rate:fast b ~name:"h23" s23 in
      let sfin = Ri_modules.Arith.add ~rate:fast b ~name:"sfin" h01 h23 in
      let y = Ri_modules.Arith.halve ~rate:fast b ~name:"hfin" sfin in
      Crn.Builder.transfer ~label:(name ^ ": to out") d.builder fast y
        out_reg.Latch.input
  | _ -> invalid_arg "Filter.moving_average: taps must be 1, 2 or 4");
  {
    design = d;
    input_name = Crn.Builder.name d.builder x;
    output_name = store_name d out_reg;
    pipeline_delay = 0;
    taps;
  }

let iir_smoother ?(name = "iir") (d : Sync_design.t) =
  let b = Crn.Builder.scoped d.builder name in
  let x = Crn.Builder.species b "x" in
  let y_reg = Latch.make d ~name:(name ^ ".y") in
  let sum = Ri_modules.Arith.add ~rate:fast b ~name:"sum" x y_reg.Latch.output in
  let yh = Ri_modules.Arith.halve ~rate:fast b ~name:"h" sum in
  Crn.Builder.transfer ~label:(name ^ ": feedback") d.builder fast yh
    y_reg.Latch.input;
  {
    design = d;
    input_name = Crn.Builder.name d.builder x;
    output_name = store_name d y_reg;
    pipeline_delay = 0;
    taps = 1;
  }

let inject_sample ?env f ~cycle value =
  if value < 0. then invalid_arg "Filter.inject_sample: negative sample";
  {
    Ode.Driver.at = Sync_design.injection_time ?env f.design ~cycle;
    species = f.input_name;
    amount = value;
  }

let output_at ?env f trace ~cycle =
  let t =
    Sync_design.sample_time ?env f.design ~cycle:(cycle + f.pipeline_delay)
  in
  let s = Ode.Trace.species_index trace f.output_name in
  Ode.Trace.value_at trace ~species:s t

let response ?env f samples =
  let n = List.length samples in
  if n = 0 then invalid_arg "Filter.response: empty input";
  let injections =
    List.mapi (fun cycle v -> inject_sample ?env f ~cycle v) samples
  in
  let trace =
    Sync_design.simulate ?env ~injections
      ~cycles:(n + f.pipeline_delay + 1)
      f.design
  in
  List.init n (fun cycle -> output_at ?env f trace ~cycle)

let reference_moving_average ~taps samples =
  let arr = Array.of_list samples in
  List.init (Array.length arr) (fun n ->
      let acc = ref 0. in
      for j = 0 to taps - 1 do
        if n - j >= 0 then acc := !acc +. arr.(n - j)
      done;
      !acc /. float_of_int taps)

let reference_iir samples =
  let rec go y = function
    | [] -> []
    | x :: rest ->
        let y' = (x +. y) /. 2. in
        y' :: go y' rest
  in
  go 0. samples
