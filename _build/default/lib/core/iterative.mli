(** Iterative arithmetic — "for"-loop computation unlocked by memory.

    The companion combinational work implements multiplication,
    exponentiation and logarithms with self-timed loops; here they are built
    on the synchronous framework instead: one loop iteration per clock
    cycle, sequenced by a single-molecule {e token} that the release phase
    converts into a per-cycle gate. All constructs are rate-category
    robust; accuracy improves with the fast/slow separation.

    Inputs are preset as initial concentrations; the computation starts at
    [t = 0] and is finished after {!cycles_needed} clock cycles, when the
    output species has stopped changing.

    Note on semantics: with deterministic mass-action kinetics quantities
    are real-valued, so {!log2floor}'s "floor" behaviour (exact over
    integer molecule counts — see the stochastic tests) relaxes to a
    convergent fractional sum [sum_j min(1, a / 2^j)] over cycles [j];
    {!log2_ode_expected} computes it. *)

type t = {
  design : Sync_design.t;
  output_name : string;
  cycles_needed : int;
  expected : float;  (** ideal output value *)
}

val multiplier : ?name:string -> Sync_design.t -> a:float -> count:int -> t
(** [Y := a * count] by adding [a] to the output once per cycle, [count]
    times: a unit token is released each cycle and decrements the counter
    species, spawning a gate that catalytically copies the (regenerated)
    addend into the output. Raises [Invalid_argument] if [a < 0.] or
    [count < 0]. *)

val power2 : ?name:string -> Sync_design.t -> n:int -> t
(** [Y := 2^n] by doubling a register once per cycle, [n] times. Raises
    [Invalid_argument] if [n < 0] or [n > 20]. *)

val log2floor : ?name:string -> Sync_design.t -> a:float -> t
(** [Y := floor(log2 a)] over molecule counts, by halving once per cycle
    and incrementing the output (through a one-unit flag) on every cycle in
    which at least a full unit was paired. [expected] is set to the ODE
    (real-valued) limit for the default cycle count. Raises
    [Invalid_argument] if [a < 1.]. *)

val log2_ode_expected : a:float -> cycles:int -> float
(** The deterministic-kinetics value after [cycles]:
    [sum_(j=1..cycles) min(1, a / 2^j)]. *)

val read : ?env:Crn.Rates.env -> t -> Ode.Trace.t -> float
(** Output value after {!t.cycles_needed} cycles. *)

val run : ?env:Crn.Rates.env -> t -> float
(** Simulate for [cycles_needed] cycles and read the output. *)
