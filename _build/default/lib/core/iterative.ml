type t = {
  design : Sync_design.t;
  output_name : string;
  cycles_needed : int;
  expected : float;
}

let fast = Crn.Rates.fast

(* The per-cycle gate machinery shared by multiplier and power2:
   a one-unit token T is released each cycle (T + P0 -> Tr + P0); if the
   counter C is nonzero the released token decrements it and spawns the
   gate G (Tr + C -> Tp + G); the gate drives this construct's body during
   phases 0-1; the token returns on capture (Tp + P2 -> T, and idle
   Tr + P2 -> T when C was exhausted); the gate is destroyed on capture. *)
let token_loop (d : Sync_design.t) b ~name ~count =
  let token = Crn.Builder.species b "T"
  and released = Crn.Builder.species b "Tr"
  and spent = Crn.Builder.species b "Tp"
  and counter = Crn.Builder.species b "C"
  and gate = Crn.Builder.species b "G" in
  Crn.Builder.init b token 1.;
  Crn.Builder.init b counter (float_of_int count);
  Sync_design.phase_gated ~label:(name ^ ": release token") d
    ~phase:(Sync_design.release_phase d)
    token
    [ (released, 1) ];
  Crn.Builder.react ~label:(name ^ ": decrement") b fast
    [ (released, 1); (counter, 1) ]
    [ (spent, 1); (gate, 1) ];
  Sync_design.phase_gated ~label:(name ^ ": return token") d
    ~phase:(Sync_design.capture_phase d)
    spent
    [ (token, 1) ];
  Sync_design.phase_gated ~label:(name ^ ": idle return") d
    ~phase:(Sync_design.capture_phase d)
    released
    [ (token, 1) ];
  Sync_design.clear_on ~label:(name ^ ": spend gate") d
    ~phase:(Sync_design.capture_phase d)
    gate;
  gate

let multiplier ?(name = "mul") (d : Sync_design.t) ~a ~count =
  if a < 0. then invalid_arg "Iterative.multiplier: negative multiplicand";
  if count < 0 then invalid_arg "Iterative.multiplier: negative count";
  let b = Crn.Builder.scoped d.builder name in
  let gate = token_loop d b ~name ~count in
  let addend = Crn.Builder.species b "A"
  and shadow = Crn.Builder.species b "Ac"
  and y = Crn.Builder.species b "Y" in
  Crn.Builder.init b addend a;
  (* copy the whole addend into the output, gated by the per-cycle gate *)
  Crn.Builder.react ~label:(name ^ ": copy") b fast
    [ (addend, 1); (gate, 1) ]
    [ (shadow, 1); (y, 1); (gate, 1) ];
  (* two-stage restore through the two disjoint clock slots: the shadow
     copy may only become the addend again at the NEXT release, when the
     next cycle's gate is the one that should see it *)
  let staged = Crn.Builder.species b "Am" in
  Sync_design.phase_gated ~label:(name ^ ": stage restore") d
    ~phase:(Sync_design.capture_phase d)
    shadow
    [ (staged, 1) ];
  Sync_design.phase_gated ~label:(name ^ ": restore") d
    ~phase:(Sync_design.release_phase d)
    staged
    [ (addend, 1) ];
  {
    design = d;
    output_name = Crn.Builder.name d.builder y;
    cycles_needed = count + 2;
    expected = a *. float_of_int count;
  }

let power2 ?(name = "pow") (d : Sync_design.t) ~n =
  if n < 0 || n > 20 then invalid_arg "Iterative.power2: n must be in 0..20";
  let b = Crn.Builder.scoped d.builder name in
  let gate = token_loop d b ~name ~count:n in
  let acc = Crn.Builder.species b "A" and shadow = Crn.Builder.species b "Ac" in
  Crn.Builder.init b acc 1.;
  Crn.Builder.react ~label:(name ^ ": double") b fast
    [ (acc, 1); (gate, 1) ]
    [ (shadow, 2); (gate, 1) ];
  let staged = Crn.Builder.species b "Am" in
  Sync_design.phase_gated ~label:(name ^ ": stage restore") d
    ~phase:(Sync_design.capture_phase d)
    shadow
    [ (staged, 1) ];
  Sync_design.phase_gated ~label:(name ^ ": restore") d
    ~phase:(Sync_design.release_phase d)
    staged
    [ (acc, 1) ];
  {
    design = d;
    output_name = Crn.Builder.name d.builder acc;
    cycles_needed = n + 2;
    expected = 2. ** float_of_int n;
  }

let log2_ode_expected ~a ~cycles =
  let acc = ref 0. in
  for j = 1 to cycles do
    acc := !acc +. Float.min 1. (a /. (2. ** float_of_int j))
  done;
  !acc

let log2floor ?(name = "log") (d : Sync_design.t) ~a =
  if a < 1. then invalid_arg "Iterative.log2floor: input must be >= 1";
  let b = Crn.Builder.scoped d.builder name in
  let reg = Crn.Builder.species b "A"
  and halved = Crn.Builder.species b "Ah"
  and staged = Crn.Builder.species b "An"
  and marks = Crn.Builder.species b "M"
  and flag = Crn.Builder.species b "F"
  and flagged = Crn.Builder.species b "Fm"
  and y = Crn.Builder.species b "Y" in
  Crn.Builder.init b reg a;
  Crn.Builder.init b flag 1.;
  (* one halving per cycle, enforced by routing the result through two
     phase-gated restores (capture then release) *)
  Crn.Builder.react ~label:(name ^ ": halve") b fast
    [ (reg, 2) ]
    [ (halved, 1); (marks, 1) ];
  Sync_design.phase_gated ~label:(name ^ ": stage") d
    ~phase:(Sync_design.capture_phase d)
    halved
    [ (staged, 1) ];
  Sync_design.phase_gated ~label:(name ^ ": restore") d
    ~phase:(Sync_design.release_phase d)
    staged
    [ (reg, 1) ];
  (* increment: the one-unit flag absorbs (up to) one mark per cycle and
     emits one output unit when it resets on the hold phase *)
  Crn.Builder.react ~label:(name ^ ": flag") b fast
    [ (flag, 1); (marks, 1) ]
    [ (flagged, 1) ];
  (* the flag too returns through both disjoint slots, so it can absorb at
     most one mark per cycle *)
  let flag_staged = Crn.Builder.species b "Fn" in
  Sync_design.phase_gated ~label:(name ^ ": stage flag") d
    ~phase:(Sync_design.capture_phase d)
    flagged
    [ (flag_staged, 1) ];
  Sync_design.phase_gated ~label:(name ^ ": emit") d
    ~phase:(Sync_design.release_phase d)
    flag_staged
    [ (flag, 1); (y, 1) ];
  (* discard surplus marks and the odd leftover unit each capture phase *)
  Sync_design.clear_on ~label:(name ^ ": spend marks") d
    ~phase:(Sync_design.capture_phase d)
    marks;
  Sync_design.clear_on ~label:(name ^ ": drop odd unit") d
    ~phase:(Sync_design.capture_phase d)
    reg;
  let cycles_needed = int_of_float (Float.round (log a /. log 2.)) + 3 in
  {
    design = d;
    output_name = Crn.Builder.name d.builder y;
    cycles_needed;
    expected = log2_ode_expected ~a ~cycles:cycles_needed;
  }

let read ?env it trace =
  let t = Sync_design.sample_time ?env it.design ~cycle:(it.cycles_needed - 1) in
  let s = Ode.Trace.species_index trace it.output_name in
  Ode.Trace.value_at trace ~species:s t

let run ?env it =
  let trace = Sync_design.simulate ?env ~cycles:it.cycles_needed it.design in
  read ?env it trace
