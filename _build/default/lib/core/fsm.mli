(** Synthesis of finite-state machines as clocked molecular reactions.

    The state is one-hot encoded: species [S_q] holds the full signal mass
    exactly when the machine is in state [q]. Each cycle:

    - release (phase 0): [S_q + P0 -> T_q + P0] moves the state into transit;
    - transition (fast, during phases 0–1): for an autonomous machine,
      [T_q -> Z_delta(q)]; with inputs, [T_q + I_s -> Z_delta(q,s) + I_s]
      where [I_s] is the {e symbol species} for input symbol [s] (catalytic,
      so any injected quantity works);
    - capture (phase 2): [Z_q + P2 -> S_q + outputs(q) + P2] — Moore
      outputs are emitted with the state's mass;
    - cleanup: symbol species are destroyed on phase 3, output species of
      the previous cycle on phase 0.

    {b Input discipline}: machines with [n_symbols > 1] require exactly one
    symbol species injected per cycle, between release and capture
    ({!Sync_design.injection_time}); a cycle with no symbol leaves the
    machine in transit until a symbol arrives (it does not lose state, but
    outputs lag). This dual-rail presence convention is the standard one in
    this literature. *)

type spec = {
  name : string;
  n_states : int;
  n_symbols : int;  (** 1 for an autonomous (input-free) machine *)
  transition : int -> int -> int;  (** [transition state symbol] *)
  initial : int;
  outputs : (string * (int -> bool)) list;
      (** Moore outputs: [(name, active-in-state predicate)] *)
}

type t = {
  spec : spec;
  state_species : int array;  (** [S_q] *)
  symbol_species : int array;  (** [I_s]; empty when autonomous *)
  output_species : (string * int) list;
  design : Sync_design.t;
}

val synthesize : Sync_design.t -> spec -> t
(** Raises [Invalid_argument] on inconsistent specs (no states, initial out
    of range, transition out of range, duplicate output names). *)

val state_names : t -> string list
(** Fully qualified names of [S_q], in state order. *)

val output_names : t -> string list
(** Fully qualified names of the Moore output species. *)

val symbol_name : t -> int -> string

val inject_symbol :
  ?env:Crn.Rates.env -> t -> cycle:int -> symbol:int -> Ode.Driver.injection
(** The injection presenting input [symbol] during [cycle]. *)

val state_at :
  ?env:Crn.Rates.env -> t -> Ode.Trace.t -> cycle:int -> int option
(** Decode the (one-hot) state held after [cycle]'s capture; [None] if the
    encoding is invalid at the sample time. *)

val run :
  ?env:Crn.Rates.env -> t -> symbols:int list -> Ode.Trace.t * int option list
(** Simulate the machine over the given input word (one symbol per cycle;
    [symbols = []] is invalid) and return the trace plus the decoded state
    after each cycle. For autonomous machines pass the desired number of
    cycles as a list of zeros. *)
