type t = { input : int; store : int; output : int; name : string }

let make ?(init = 0.) (d : Sync_design.t) ~name =
  let b = Crn.Builder.scoped d.builder name in
  let input = Crn.Builder.species b "in"
  and store = Crn.Builder.species b "store"
  and output = Crn.Builder.species b "out" in
  if init > 0. then Crn.Builder.init b store init;
  Sync_design.phase_gated ~label:(name ^ ": capture") d
    ~phase:(Sync_design.capture_phase d)
    input
    [ (store, 1) ];
  Sync_design.phase_gated ~label:(name ^ ": release") d
    ~phase:(Sync_design.release_phase d)
    store
    [ (output, 1) ];
  { input; store; output; name }

let feed (d : Sync_design.t) latch src =
  Crn.Builder.transfer
    ~label:(latch.name ^ ": feed")
    d.builder Crn.Rates.fast src latch.input

let chain ?init_first (d : Sync_design.t) ~name n =
  if n < 1 then invalid_arg "Latch.chain: need at least one latch";
  let latches =
    List.init n (fun i ->
        let init = if i = 0 then init_first else None in
        make ?init d ~name:(Printf.sprintf "%s%d" name i))
  in
  let rec wire = function
    | a :: (b : t) :: rest ->
        feed d b a.output;
        wire (b :: rest)
    | [ _ ] | [] -> ()
  in
  wire latches;
  latches

let sink (d : Sync_design.t) latch =
  let s =
    Crn.Builder.species d.builder (latch.name ^ ".sink")
  in
  Crn.Builder.transfer
    ~label:(latch.name ^ ": drain to sink")
    d.builder Crn.Rates.fast latch.output s;
  s
