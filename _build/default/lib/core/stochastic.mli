(** Decoding sequential designs from {e stochastic} traces.

    Under Gillespie simulation the clock still oscillates, but its period
    is an emergent random variable (discrete indicator molecules make the
    gated bootstrap transfers wait for whole Poisson arrivals — measured
    roughly 2x the deterministic period, with visible jitter). Cycle-based
    decoding therefore cannot use the deterministic
    {!Sync_design.sample_time}; these helpers recover the cycle boundaries
    from the simulated clock itself and sample mid-hold.

    The trace can come from any simulator — these functions only read it —
    but their reason to exist is {!Ssa.Gillespie.run}. Note that the first
    {e detected} boundary is the clock's second rise (phase 0 starts high,
    so there is no rising crossing at [t = 0]): the state decoded "after
    cycle 0" of this module has already taken two transitions of the
    design. *)

val cycle_sample_times :
  ?hold_fraction:float -> Ode.Trace.t -> Molclock.Oscillator.t -> float list
(** Mid-hold sampling moments between consecutive measured cycle starts
    (default [hold_fraction = 0.55] of the way into each cycle). Empty if
    the clock never completed a cycle. *)

val counter_states :
  Ode.Trace.t -> Counter.t -> int option list
(** Decoded one-hot counter state at each measured cycle. *)

val fsm_states : Ode.Trace.t -> Fsm.t -> int option list
(** Decoded one-hot FSM state at each measured cycle. *)

val increments_by_one :
  int option list -> modulo:int -> bool
(** Do consecutive decoded states each advance by exactly one (mod
    [modulo])? [false] on any [None] or jump; vacuously [true] for fewer
    than two samples. *)
