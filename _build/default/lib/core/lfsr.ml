type t = {
  latches : Latch.t list;
  taps : int list;
  design : Sync_design.t;
  name : string;
}

let xor_gate (d : Sync_design.t) ~name ~out a b =
  let b' = Crn.Builder.scoped d.builder name in
  let fast = Crn.Rates.fast in
  let aa = Crn.Builder.species b' "aa"
  and am = Crn.Builder.species b' "am"
  and ba = Crn.Builder.species b' "ba"
  and bm = Crn.Builder.species b' "bm"
  and md = Crn.Builder.species b' "md" in
  Crn.Builder.react ~label:(name ^ ": fan a") d.builder fast
    [ (a, 1) ]
    [ (aa, 1); (am, 1) ];
  Crn.Builder.react ~label:(name ^ ": fan b") d.builder fast
    [ (b, 1) ]
    [ (ba, 1); (bm, 1) ];
  (* the sum accumulates directly in the (held) output species — routing
     it through a further transfer would let part of it escape before the
     annihilation below finishes *)
  Crn.Builder.transfer ~label:(name ^ ": sum a") d.builder fast aa out;
  Crn.Builder.transfer ~label:(name ^ ": sum b") d.builder fast ba out;
  (* min(a,b) doubled: each matched pair contributes two annihilators *)
  Crn.Builder.react ~label:(name ^ ": pair") d.builder fast
    [ (am, 1); (bm, 1) ]
    [ (md, 2) ];
  Crn.Builder.react ~label:(name ^ ": annihilate") d.builder fast
    [ (out, 1); (md, 1) ]
    [];
  (* pairing residues (|a-b| worth of the larger input) and any stray
     annihilators must not survive into the next cycle *)
  let capture = Sync_design.capture_phase d in
  List.iter
    (fun s -> Sync_design.clear_on ~label:(name ^ ": residue") d ~phase:capture s)
    [ am; bm; md ]

let reference ~bits ~taps ~seed ~n =
  let step state =
    let fb =
      List.fold_left (fun acc t -> acc lxor ((state lsr t) land 1)) 0 taps
    in
    ((state lsl 1) lor fb) land ((1 lsl bits) - 1)
  in
  let rec go state k acc =
    if k = 0 then List.rev acc
    else
      let state' = step state in
      go state' (k - 1) (state' :: acc)
  in
  go seed n []

let validate ~bits ~taps ~seed =
  if bits < 2 then invalid_arg "Lfsr: need at least 2 bits";
  if List.length taps <> 2 then
    invalid_arg "Lfsr: exactly two taps are supported (the XOR output must \
                 settle in place; chaining gates would re-introduce the \
                 escape race)";
  if List.length (List.sort_uniq compare taps) <> List.length taps then
    invalid_arg "Lfsr: duplicate taps";
  List.iter
    (fun t ->
      if t < 0 || t >= bits then invalid_arg "Lfsr: tap out of range")
    taps;
  if seed <= 0 || seed lsr bits <> 0 then
    invalid_arg "Lfsr: seed must be a nonzero value fitting the register"

let make ?(name = "lfsr") (d : Sync_design.t) ~bits ~taps ~seed =
  validate ~bits ~taps ~seed;
  let latches =
    List.init bits (fun i ->
        let init =
          if (seed lsr i) land 1 = 1 then Some d.signal_mass else None
        in
        Latch.make ?init d ~name:(Printf.sprintf "%s.b%d" name i))
  in
  let arr = Array.of_list latches in
  (* each latch output feeds: the next latch (shift), and/or an XOR tap
     copy; outputs with several consumers go through a fanout reaction *)
  let tap_copy = Array.make bits None in
  for i = 0 to bits - 1 do
    let latch = arr.(i) in
    let shift_to = if i < bits - 1 then Some arr.(i + 1).Latch.input else None in
    let tapped = List.mem i taps in
    match (shift_to, tapped) with
    | Some nxt, false ->
        Crn.Builder.transfer
          ~label:(Printf.sprintf "%s: shift b%d" name i)
          d.builder Crn.Rates.fast latch.Latch.output nxt
    | Some nxt, true ->
        let copy =
          Crn.Builder.species d.builder (Printf.sprintf "%s.t%d" name i)
        in
        Crn.Builder.react
          ~label:(Printf.sprintf "%s: shift+tap b%d" name i)
          d.builder Crn.Rates.fast
          [ (latch.Latch.output, 1) ]
          [ (nxt, 1); (copy, 1) ];
        tap_copy.(i) <- Some copy
    | None, true ->
        let copy =
          Crn.Builder.species d.builder (Printf.sprintf "%s.t%d" name i)
        in
        Crn.Builder.transfer
          ~label:(Printf.sprintf "%s: tap b%d" name i)
          d.builder Crn.Rates.fast latch.Latch.output copy;
        tap_copy.(i) <- Some copy
    | None, false ->
        (* the oldest bit simply shifts out *)
        Sync_design.clear_on
          ~label:(Printf.sprintf "%s: drop b%d" name i)
          d
          ~phase:(Sync_design.capture_phase d)
          latch.Latch.output
  done;
  (* the feedback XOR writes directly into bit 0's (held) input *)
  (match
     List.map
       (fun t ->
         match tap_copy.(t) with Some s -> s | None -> assert false)
       taps
   with
  | [ ta; tb ] ->
      xor_gate d ~name:(name ^ ".xor") ~out:arr.(0).Latch.input ta tb
  | _ -> assert false);
  { latches; taps; design = d; name }

let state_names l =
  List.map
    (fun latch -> Crn.Builder.name l.design.Sync_design.builder latch.Latch.store)
    l.latches

let state_at ?env l trace ~cycle =
  let t = Sync_design.sample_time ?env l.design ~cycle in
  Analysis.Decode.int_at
    ~threshold:(l.design.Sync_design.signal_mass /. 2.)
    trace (state_names l) t
