type spec = {
  name : string;
  n_states : int;
  n_symbols : int;
  transition : int -> int -> int;
  initial : int;
  outputs : (string * (int -> bool)) list;
}

type t = {
  spec : spec;
  state_species : int array;
  symbol_species : int array;
  output_species : (string * int) list;
  design : Sync_design.t;
}

let validate spec =
  if spec.n_states < 1 then invalid_arg "Fsm: need at least one state";
  if spec.n_symbols < 1 then invalid_arg "Fsm: need at least one symbol";
  if spec.initial < 0 || spec.initial >= spec.n_states then
    invalid_arg "Fsm: initial state out of range";
  for q = 0 to spec.n_states - 1 do
    for s = 0 to spec.n_symbols - 1 do
      let q' = spec.transition q s in
      if q' < 0 || q' >= spec.n_states then
        invalid_arg
          (Printf.sprintf "Fsm: transition %d/%d out of range" q s)
    done
  done;
  let names = List.map fst spec.outputs in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Fsm: duplicate output names"

let synthesize (d : Sync_design.t) spec =
  validate spec;
  let b = Crn.Builder.scoped d.builder spec.name in
  let state_species =
    Array.init spec.n_states (fun q ->
        Crn.Builder.species b (Printf.sprintf "S%d" q))
  in
  let transit =
    Array.init spec.n_states (fun q ->
        Crn.Builder.species b (Printf.sprintf "T%d" q))
  in
  let staging =
    Array.init spec.n_states (fun q ->
        Crn.Builder.species b (Printf.sprintf "Z%d" q))
  in
  let symbol_species =
    if spec.n_symbols = 1 then [||]
    else
      Array.init spec.n_symbols (fun s ->
          Crn.Builder.species b (Printf.sprintf "I%d" s))
  in
  let output_species =
    List.map (fun (name, _) -> (name, Crn.Builder.species b name)) spec.outputs
  in
  Crn.Builder.init b state_species.(spec.initial) d.signal_mass;
  for q = 0 to spec.n_states - 1 do
    (* release *)
    Sync_design.phase_gated
      ~label:(Printf.sprintf "%s: release S%d" spec.name q)
      d
      ~phase:(Sync_design.release_phase d)
      state_species.(q)
      [ (transit.(q), 1) ];
    (* transition *)
    if spec.n_symbols = 1 then
      Crn.Builder.transfer
        ~label:(Printf.sprintf "%s: step %d->%d" spec.name q (spec.transition q 0))
        b Crn.Rates.fast
        transit.(q)
        staging.(spec.transition q 0)
    else
      for s = 0 to spec.n_symbols - 1 do
        Crn.Builder.react
          ~label:
            (Printf.sprintf "%s: step %d/%d->%d" spec.name q s
               (spec.transition q s))
          b Crn.Rates.fast
          [ (transit.(q), 1); (symbol_species.(s), 1) ]
          [ (staging.(spec.transition q s), 1); (symbol_species.(s), 1) ]
      done;
    (* capture, emitting Moore outputs with the state's mass *)
    let products =
      (state_species.(q), 1)
      :: List.filter_map
           (fun (name, active) ->
             if active q then Some (List.assoc name output_species, 1)
             else None)
           spec.outputs
    in
    Sync_design.phase_gated
      ~label:(Printf.sprintf "%s: capture Z%d" spec.name q)
      d
      ~phase:(Sync_design.capture_phase d)
      staging.(q) products
  done;
  (* cleanups *)
  Array.iter
    (fun i ->
      (* cleared on capture: disjoint from the release window, and the
         transition has consumed the symbol's information by then *)
      Sync_design.clear_on
        ~label:(spec.name ^ ": spend symbol")
        d
        ~phase:(Sync_design.capture_phase d)
        i)
    symbol_species;
  List.iter
    (fun (name, o) ->
      Sync_design.clear_on
        ~label:(spec.name ^ ": clear output " ^ name)
        d
        ~phase:(Sync_design.release_phase d)
        o)
    output_species;
  { spec; state_species; symbol_species; output_species; design = d }

let names_of m arr =
  Array.to_list (Array.map (Crn.Builder.name m.design.Sync_design.builder) arr)

let state_names m = names_of m m.state_species

let output_names m =
  List.map
    (fun (_, o) -> Crn.Builder.name m.design.Sync_design.builder o)
    m.output_species

let symbol_name m s =
  if Array.length m.symbol_species = 0 then
    invalid_arg "Fsm.symbol_name: autonomous machine";
  Crn.Builder.name m.design.Sync_design.builder m.symbol_species.(s)

let inject_symbol ?env m ~cycle ~symbol =
  if Array.length m.symbol_species = 0 then
    invalid_arg "Fsm.inject_symbol: autonomous machine";
  if symbol < 0 || symbol >= Array.length m.symbol_species then
    invalid_arg "Fsm.inject_symbol: symbol out of range";
  {
    Ode.Driver.at = Sync_design.injection_time ?env m.design ~cycle;
    species = symbol_name m symbol;
    amount = m.design.Sync_design.signal_mass;
  }

let state_at ?env m trace ~cycle =
  let t = Sync_design.sample_time ?env m.design ~cycle in
  Analysis.Decode.onehot_at
    ~threshold:(m.design.Sync_design.signal_mass /. 2.)
    trace (state_names m) t

let run ?env m ~symbols =
  if symbols = [] then invalid_arg "Fsm.run: empty input word";
  let cycles = List.length symbols in
  let injections =
    if Array.length m.symbol_species = 0 then []
    else
      List.mapi (fun cycle s -> inject_symbol ?env m ~cycle ~symbol:s) symbols
  in
  let trace = Sync_design.simulate ?env ~injections ~cycles m.design in
  let decoded =
    List.init cycles (fun cycle -> state_at ?env m trace ~cycle)
  in
  (trace, decoded)
