type stats = {
  design : string;
  species : int;
  reactions : int;
  fast_reactions : int;
  slow_reactions : int;
  max_order : int;
  zero_order_sources : int;
  conservation_laws : int;
}

let stats_of ~name net =
  let rs = Crn.Network.reactions net in
  let count p = Array.fold_left (fun acc r -> if p r then acc + 1 else acc) 0 rs in
  {
    design = name;
    species = Crn.Network.n_species net;
    reactions = Array.length rs;
    fast_reactions =
      count (fun r -> r.Crn.Reaction.rate.Crn.Rates.category = Crn.Rates.Fast);
    slow_reactions =
      count (fun r -> r.Crn.Reaction.rate.Crn.Rates.category = Crn.Rates.Slow);
    max_order =
      Array.fold_left (fun acc r -> max acc (Crn.Reaction.order r)) 0 rs;
    zero_order_sources = count (fun r -> Crn.Reaction.order r = 0);
    conservation_laws = List.length (Crn.Conservation.laws net);
  }

let pp fmt s =
  Format.fprintf fmt
    "%s: %d species, %d reactions (%d fast / %d slow, %d sources), max order %d, %d conservation laws"
    s.design s.species s.reactions s.fast_reactions s.slow_reactions
    s.zero_order_sources s.max_order s.conservation_laws

let header =
  [
    "design";
    "species";
    "reactions";
    "fast";
    "slow";
    "sources";
    "max-order";
    "cons-laws";
  ]

let row s =
  [
    s.design;
    string_of_int s.species;
    string_of_int s.reactions;
    string_of_int s.fast_reactions;
    string_of_int s.slow_reactions;
    string_of_int s.zero_order_sources;
    string_of_int s.max_order;
    string_of_int s.conservation_laws;
  ]
