(** Linear-feedback shift registers, built {e structurally} from delay
    elements plus a molecular XOR — in contrast to the behavioral (one-hot
    FSM) counters. The structural/behavioral pair is the synthesis-cost
    ablation in the benchmark harness.

    Bits are quantities in [{0, signal_mass}]. XOR of two such signals is
    computed rate-independently as [(a + b) - 2 * min(a, b)]:
    fanout each input to an adder and a pairing module, double the pairing
    output and annihilate it against the sum. *)

type t = {
  latches : Latch.t list;  (** bit 0 first; bit 0 is the feedback target *)
  taps : int list;
  design : Sync_design.t;
  name : string;
}

val xor_gate : Sync_design.t -> name:string -> out:int -> int -> int -> unit
(** Combinational XOR on two released bit signals, accumulating its result
    {e in place} in [out] — which must be a held species (a latch input),
    because a downstream transfer would drain the output before the
    annihilation finishes. All production reactions are fast
    (clocked-combinational discipline); pairing residues are cleared on the
    capture phase. *)

val make :
  ?name:string -> Sync_design.t -> bits:int -> taps:int list -> seed:int -> t
(** A Fibonacci LFSR: bits shift from index 0 upward; the new bit 0 is the
    XOR of the tapped bits (indices into the register, [0] = newest). [seed]
    is the initial register contents (bit [i] of the integer presets latch
    [i]). Raises [Invalid_argument] if [bits < 2], [taps] has fewer than 2
    or more than 2 entries or duplicates, a tap is out of range, or [seed] is zero (the
    all-zero state is a fixed point) or does not fit in [bits]. *)

val reference : bits:int -> taps:int list -> seed:int -> n:int -> int list
(** Golden software model: the register contents after each of [n] steps. *)

val state_names : t -> string list
(** Store species of each bit latch, bit 0 first. *)

val state_at : ?env:Crn.Rates.env -> t -> Ode.Trace.t -> cycle:int -> int
(** Register contents (bit 0 = LSB) decoded after [cycle]'s capture. *)
