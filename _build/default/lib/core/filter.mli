(** Clocked DSP filters — the signal-processing workload this research
    program targets (the companion synthesis-flow paper compiles
    moving-average and biquad filters into reactions).

    Input samples are quantities injected once per clock cycle; outputs are
    quantities held in an output register, read once per cycle. Division by
    two is the reaction [2X -> Y]; with deterministic mass-action kinetics
    this halving is exact on real-valued quantities (no floor). *)

type t = {
  design : Sync_design.t;
  input_name : string;  (** species to inject samples into *)
  output_name : string;  (** register store holding y\[n\] *)
  pipeline_delay : int;
      (** cycles between injecting x\[n\] and reading the y that includes
          it *)
  taps : int;
}

val moving_average : ?name:string -> Sync_design.t -> taps:int -> t
(** FIR moving average over the last [taps] samples, [taps] in {1, 2, 4}
    (powers of two keep the scaling exact with halvings alone). Raises
    [Invalid_argument] otherwise. *)

val iir_smoother : ?name:string -> Sync_design.t -> t
(** First-order IIR [y(n) = (x(n) + y(n-1)) / 2] — exercises a feedback
    loop through a delay element. *)

val inject_sample :
  ?env:Crn.Rates.env -> t -> cycle:int -> float -> Ode.Driver.injection
(** Present sample [x(cycle)]. Raises [Invalid_argument] on negatives
    (concentrations cannot be negative; use an offset encoding for signed
    signals). *)

val output_at : ?env:Crn.Rates.env -> t -> Ode.Trace.t -> cycle:int -> float
(** The output registered in [cycle] (read at the safe sampling moment). *)

val response :
  ?env:Crn.Rates.env -> t -> float list -> float list
(** Simulate the filter over an input sample stream and return the output
    for each input (aligned: element [n] is the filter's response to the
    stream through [x(n)], i.e. read [pipeline_delay] cycles after
    injection [n]). *)

val reference_moving_average : taps:int -> float list -> float list
(** Golden model with zero initial history. *)

val reference_iir : float list -> float list
(** Golden model of {!iir_smoother} with [y(-1) = 0]. *)
