(** Delay elements (D-type latches for molecular quantities) — the paper's
    memory primitive.

    A latch owns three species: the {e input} (where upstream computation
    deposits the next value during the compute window), the {e store}
    (the held value, readable between capture and the next release), and the
    {e output} (where the previous value appears after release, feeding
    downstream computation). Reactions:

    - capture (phase 2): [input + P2 ->fast store + P2]
    - release (phase 0): [store + P0 ->fast output + P0]

    Because phases 0 and 2 are never simultaneously high, a value cannot
    race through a latch within one cycle — the master–slave property. *)

type t = {
  input : int;
  store : int;
  output : int;
  name : string;
}

val make : ?init:float -> Sync_design.t -> name:string -> t
(** Create a latch under the design's scope. [init] presets the stored
    value (default 0). *)

val feed : Sync_design.t -> t -> int -> unit
(** [feed d latch src] wires a fast transfer [src ->fast latch.input] —
    identity combinational logic. *)

val chain : ?init_first:float -> Sync_design.t -> name:string -> int -> t list
(** [chain d ~name n] builds [n] latches with each one's output feeding the
    next one's input — a shift register backbone. [init_first] presets the
    first latch. Raises [Invalid_argument] if [n < 1]. *)

val sink : Sync_design.t -> t -> int
(** Create an absorbing species and route the latch's released output into
    it (for terminal registers whose old values must be discarded); returns
    the sink species. *)
