lib/core/filter.ml: Array Crn Latch List Ode Ri_modules Sync_design
