lib/core/freq_response.mli: Crn Sfg
