lib/core/sfg.ml: Array Crn Float Latch List Ode Printf Sync_design
