lib/core/fsm.mli: Crn Ode Sync_design
