lib/core/counter.mli: Crn Fsm Ode Sync_design
