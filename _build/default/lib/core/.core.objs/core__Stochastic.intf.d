lib/core/stochastic.mli: Counter Fsm Molclock Ode
