lib/core/latch.mli: Sync_design
