lib/core/freq_response.ml: Array Float List Numeric Sfg
