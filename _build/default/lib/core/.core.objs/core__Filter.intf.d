lib/core/filter.mli: Crn Ode Sync_design
