lib/core/stochastic.ml: Analysis Counter Fsm List Molclock Sync_design
