lib/core/sync_design.mli: Crn Molclock Ode
