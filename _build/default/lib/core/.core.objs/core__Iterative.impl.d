lib/core/iterative.ml: Crn Float Ode Sync_design
