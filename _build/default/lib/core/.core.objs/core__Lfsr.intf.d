lib/core/lfsr.mli: Crn Latch Ode Sync_design
