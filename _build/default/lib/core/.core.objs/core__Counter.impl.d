lib/core/counter.ml: Analysis Fsm List Printf Sync_design
