lib/core/lfsr.ml: Analysis Array Crn Latch List Printf Sync_design
