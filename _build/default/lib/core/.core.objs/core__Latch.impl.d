lib/core/latch.ml: Crn List Printf Sync_design
