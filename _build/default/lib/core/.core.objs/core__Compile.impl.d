lib/core/compile.ml: Array Crn Format List
