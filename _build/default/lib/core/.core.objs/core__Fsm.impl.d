lib/core/fsm.ml: Analysis Array Crn List Ode Printf Sync_design
