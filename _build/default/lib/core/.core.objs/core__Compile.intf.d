lib/core/compile.mli: Crn Format
