lib/core/sfg.mli: Crn Ode Sync_design
