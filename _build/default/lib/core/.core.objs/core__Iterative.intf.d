lib/core/iterative.mli: Crn Ode Sync_design
