lib/core/sync_design.ml: Crn Hashtbl Molclock Ode
