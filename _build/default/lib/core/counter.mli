(** Binary counters — the paper's flagship sequential example.

    Both variants are one-hot FSMs over [2^bits] states with binary-weighted
    Moore outputs [bit0 .. bit(n-1)], so the bit species trace out the
    classic counter waveforms (bit 0 toggling every cycle, bit 1 every two,
    ...). The {e free-running} counter advances every clock cycle; the
    {e gated} counter advances only on input symbol 1 and holds on symbol 0
    — "counting molecular events" presented as inputs. *)

type t = { fsm : Fsm.t; bits : int }

val free_running : ?name:string -> Sync_design.t -> bits:int -> t
(** Default name ["ctr"]. Raises [Invalid_argument] unless
    [1 <= bits <= 8] (one-hot states grow as [2^bits]). *)

val gated : ?name:string -> Sync_design.t -> bits:int -> t
(** Two input symbols: 0 = hold, 1 = count. *)

val gray : ?name:string -> Sync_design.t -> bits:int -> t
(** Free-running counter whose Moore outputs are Gray-coded: exactly one
    output bit changes per cycle (minimizing simultaneous molecular
    transitions on the observable outputs). {!value_at} still reports the
    step count; {!bits_at} reports the Gray codeword. *)

val bit_names : t -> string list
(** Output species names, least-significant first. *)

val value_at : ?env:Crn.Rates.env -> t -> Ode.Trace.t -> cycle:int -> int option
(** Counter value after [cycle] (decoded from the one-hot state species,
    which is unambiguous even mid-settling); [None] if invalid. *)

val bits_at : ?env:Crn.Rates.env -> t -> Ode.Trace.t -> cycle:int -> int
(** Value decoded from the binary-weighted {e output} species — the
    observable waveforms. Agrees with {!value_at} in a settled design. *)
