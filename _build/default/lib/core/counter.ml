type t = { fsm : Fsm.t; bits : int }

let outputs bits =
  List.init bits (fun j ->
      (Printf.sprintf "bit%d" j, fun q -> (q lsr j) land 1 = 1))

let check_bits bits =
  if bits < 1 || bits > 8 then
    invalid_arg "Counter: bits must be between 1 and 8"

let free_running ?(name = "ctr") d ~bits =
  check_bits bits;
  let n = 1 lsl bits in
  let spec =
    {
      Fsm.name;
      n_states = n;
      n_symbols = 1;
      transition = (fun q _ -> (q + 1) mod n);
      initial = 0;
      outputs = outputs bits;
    }
  in
  { fsm = Fsm.synthesize d spec; bits }

let gated ?(name = "ctr") d ~bits =
  check_bits bits;
  let n = 1 lsl bits in
  let spec =
    {
      Fsm.name;
      n_states = n;
      n_symbols = 2;
      transition = (fun q s -> if s = 1 then (q + 1) mod n else q);
      initial = 0;
      outputs = outputs bits;
    }
  in
  { fsm = Fsm.synthesize d spec; bits }

let gray_code q = q lxor (q lsr 1)

let gray ?(name = "gray") d ~bits =
  check_bits bits;
  let n = 1 lsl bits in
  let outputs =
    List.init bits (fun j ->
        (Printf.sprintf "bit%d" j, fun q -> (gray_code q lsr j) land 1 = 1))
  in
  let spec =
    {
      Fsm.name;
      n_states = n;
      n_symbols = 1;
      transition = (fun q _ -> (q + 1) mod n);
      initial = 0;
      outputs;
    }
  in
  { fsm = Fsm.synthesize d spec; bits }

let bit_names c = Fsm.output_names c.fsm

let value_at ?env c trace ~cycle = Fsm.state_at ?env c.fsm trace ~cycle

let bits_at ?env c trace ~cycle =
  let d = c.fsm.Fsm.design in
  let t = Sync_design.sample_time ?env d ~cycle in
  Analysis.Decode.int_at
    ~threshold:(d.Sync_design.signal_mass /. 2.)
    trace (bit_names c) t
