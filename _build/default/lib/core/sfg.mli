(** A signal-flow-graph compiler: the synthesis flow from discrete-time DSP
    dataflow to clocked molecular reactions.

    The companion synthesis-flow work compiles signal processing
    computations (moving-average and biquad filters) into biomolecular
    reactions; this module is that flow for the synchronous framework.
    A graph is built from four node kinds —

    - {!input}: a sample stream injected once per clock cycle;
    - {!delay}: a one-cycle delay (compiled to a {!Latch});
    - {!gain}: multiplication by a non-negative rational [num/den] with
      [den] a power of two (compiled to a copy-multiplying reaction
      followed by halving stages — the binary-coefficient discipline of
      the molecular DSP papers);
    - {!add}: an n-ary adder —

    plus {!forward}/{!define} for feedback wires (every feedback loop must
    pass through at least one delay; {!compile} rejects algebraic loops).
    A wire may feed any number of consumers: the compiler materializes
    fanout reactions with the right copy counts, since molecular signals
    are consumed by whatever reads them.

    {!reference} interprets the same graph in software, so every compiled
    design has a golden model for free. Coefficients must be non-negative
    (concentrations cannot encode sign; use an offset or dual-rail encoding
    at the application level). *)

type t
type wire

val create : Sync_design.t -> name:string -> t

val input : t -> wire
(** A fresh input stream. *)

val delay : t -> wire -> wire

val gain : t -> num:int -> den:int -> wire -> wire
(** Raises [Invalid_argument] unless [num >= 0] and [den] is a positive
    power of two. [num = 0] is a sink (the wire is consumed, nothing
    emitted). *)

val add : t -> wire list -> wire
(** Raises [Invalid_argument] on fewer than two operands. *)

val forward : t -> wire
(** A wire to be defined later (for feedback). *)

val define : t -> wire -> wire -> unit
(** [define g fwd w] resolves a forward wire. Raises [Invalid_argument] if
    [fwd] is not an unresolved forward wire of this graph. *)

val output : t -> wire -> unit
(** Register a wire as a graph output (compiled to an output register whose
    store holds y[n] each cycle). *)

type compiled = {
  graph : t;
  input_names : string list;  (** injection species, in {!input} order *)
  output_names : string list;  (** output register stores, in {!output} order *)
}

val compile : t -> compiled
(** Emit the reactions into the design's network. Raises [Invalid_argument]
    on: no outputs, unresolved forwards, or a feedback loop with no delay
    (an algebraic loop). A graph can be compiled only once. *)

val inject :
  ?env:Crn.Rates.env ->
  compiled ->
  input:int ->
  cycle:int ->
  float ->
  Ode.Driver.injection

val response :
  ?env:Crn.Rates.env -> compiled -> float list list -> float list list
(** [response c streams] simulates the design over the per-input sample
    streams (all the same length) and returns one output stream per
    declared output. *)

val reference : t -> float list list -> float list list
(** Software interpretation of the graph over the same streams (delays
    start at zero). Usable before or after {!compile}. *)

val biquad :
  ?name:string ->
  Sync_design.t ->
  b0:int * int ->
  b1:int * int ->
  b2:int * int ->
  a1:int * int ->
  a2:int * int ->
  t
(** The direct-form-I biquad
    [y(n) = b0 x(n) + b1 x(n-1) + b2 x(n-2) + a1 y(n-1) + a2 y(n-2)]
    with rational coefficients [(num, den)] — the flagship filter of the
    molecular DSP literature. Call {!compile} on the result. *)
