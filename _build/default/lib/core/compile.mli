(** Synthesis-cost accounting (the "resources used" rows of the cost
    table). *)

type stats = {
  design : string;
  species : int;
  reactions : int;
  fast_reactions : int;
  slow_reactions : int;
  max_order : int;
  zero_order_sources : int;
  conservation_laws : int;
}

val stats_of : name:string -> Crn.Network.t -> stats

val pp : Format.formatter -> stats -> unit

val header : string list
(** Column labels matching {!row}. *)

val row : stats -> string list
(** Cells for an {!Analysis.Table}. *)
