type wire = int

type node =
  | Input of int
  | Delay of wire
  | Gain of int * int * wire
  | Sum of wire list
  | Forward of wire option ref

type t = {
  design : Sync_design.t;
  name : string;
  mutable nodes : node list; (* reverse order *)
  mutable n_nodes : int;
  mutable n_inputs : int;
  mutable outputs : wire list; (* reverse order *)
  mutable compiled : bool;
}

type compiled = {
  graph : t;
  input_names : string list;
  output_names : string list;
}

let create design ~name =
  {
    design;
    name;
    nodes = [];
    n_nodes = 0;
    n_inputs = 0;
    outputs = [];
    compiled = false;
  }

let push g node =
  let w = g.n_nodes in
  g.nodes <- node :: g.nodes;
  g.n_nodes <- w + 1;
  w

let input g =
  let i = g.n_inputs in
  g.n_inputs <- i + 1;
  push g (Input i)

let delay g src = push g (Delay src)

let is_power_of_two d = d > 0 && d land (d - 1) = 0

let gain g ~num ~den src =
  if num < 0 then invalid_arg "Sfg.gain: negative numerator";
  if not (is_power_of_two den) then
    invalid_arg "Sfg.gain: denominator must be a positive power of two";
  push g (Gain (num, den, src))

let add g srcs =
  if List.length srcs < 2 then invalid_arg "Sfg.add: need at least two operands";
  push g (Sum srcs)

let forward g = push g (Forward (ref None))

let node_of g w = List.nth g.nodes (g.n_nodes - 1 - w)

let define g fwd w =
  match node_of g fwd with
  | Forward r when !r = None -> r := Some w
  | Forward _ -> invalid_arg "Sfg.define: forward already defined"
  | _ -> invalid_arg "Sfg.define: not a forward wire"

let output g w = g.outputs <- w :: g.outputs

(* follow forward aliases to a concrete wire *)
let resolve g w =
  let rec go w depth =
    if depth > g.n_nodes then invalid_arg "Sfg: forward resolution cycle"
    else
      match node_of g w with
      | Forward { contents = Some w' } -> go w' (depth + 1)
      | Forward { contents = None } ->
          invalid_arg "Sfg.compile: unresolved forward wire"
      | _ -> w
  in
  go w 0

let deps g w =
  match node_of g w with
  | Input _ -> []
  | Delay _ -> [] (* a delay breaks combinational dependency *)
  | Gain (_, _, s) -> [ resolve g s ]
  | Sum ss -> List.map (resolve g) ss
  | Forward _ -> assert false (* callers resolve first *)

(* reject algebraic loops: a cycle in the delay-broken dependency graph *)
let check_no_algebraic_loop g =
  let color = Array.make g.n_nodes 0 in
  let rec dfs w =
    match color.(w) with
    | 1 -> invalid_arg "Sfg.compile: algebraic loop (feedback without a delay)"
    | 2 -> ()
    | _ ->
        color.(w) <- 1;
        List.iter dfs (deps g w);
        color.(w) <- 2
  in
  for w = 0 to g.n_nodes - 1 do
    match node_of g w with Forward _ -> () | _ -> dfs w
  done

let fast = Crn.Rates.fast

let compile g =
  if g.compiled then invalid_arg "Sfg.compile: graph already compiled";
  if g.outputs = [] then invalid_arg "Sfg.compile: no outputs declared";
  (* resolving every wire also rejects unresolved forwards *)
  for w = 0 to g.n_nodes - 1 do
    ignore (resolve g w)
  done;
  check_no_algebraic_loop g;
  g.compiled <- true;
  let d = g.design in
  let b = Crn.Builder.scoped d.Sync_design.builder g.name in
  (* consumer counts per concrete wire (multiplicity matters) *)
  let uses = Array.make g.n_nodes 0 in
  let consume w = uses.(resolve g w) <- uses.(resolve g w) + 1 in
  for w = 0 to g.n_nodes - 1 do
    match node_of g w with
    | Input _ | Forward _ -> ()
    | Delay s -> consume s
    | Gain (_, _, s) -> consume s
    | Sum ss -> List.iter consume ss
  done;
  List.iter consume g.outputs;
  (* producer species per concrete wire, and the per-consumer copy queues *)
  let producer = Array.make g.n_nodes (-1) in
  let copies = Array.make g.n_nodes [] in
  let species name = Crn.Builder.species b name in
  for w = 0 to g.n_nodes - 1 do
    match node_of g w with
    | Forward _ -> ()
    | _ -> producer.(w) <- species (Printf.sprintf "w%d" w)
  done;
  (* fanout: a producer with k > 1 consumers splits into k copy species *)
  for w = 0 to g.n_nodes - 1 do
    if producer.(w) >= 0 then
      if uses.(w) > 1 then begin
        let cs =
          List.init uses.(w) (fun i -> species (Printf.sprintf "w%d.c%d" w i))
        in
        Crn.Builder.react
          ~label:(Printf.sprintf "%s: fanout w%d" g.name w)
          b fast
          [ (producer.(w), 1) ]
          (List.map (fun c -> (c, 1)) cs);
        copies.(w) <- cs
      end
      else copies.(w) <- [ producer.(w) ]
  done;
  let take w =
    let w = resolve g w in
    match copies.(w) with
    | c :: rest ->
        copies.(w) <- rest;
        c
    | [] -> assert false
  in
  (* emit each node's reactions; its result transfers into producer.(w) *)
  let input_names = Array.make g.n_inputs "" in
  for w = 0 to g.n_nodes - 1 do
    match node_of g w with
    | Forward _ -> ()
    | Input i ->
        (* the producer species is the injection target itself *)
        input_names.(i) <- Crn.Builder.name b producer.(w)
    | Delay s ->
        let latch = Latch.make d ~name:(Printf.sprintf "%s.z%d" g.name w) in
        Crn.Builder.transfer
          ~label:(Printf.sprintf "%s: into z%d" g.name w)
          b fast (take s) latch.Latch.input;
        Crn.Builder.transfer
          ~label:(Printf.sprintf "%s: out of z%d" g.name w)
          b fast latch.Latch.output producer.(w)
    | Gain (num, den, s) ->
        let src = take s in
        if num = 0 then
          (* a sink: consume the operand, emit nothing *)
          Crn.Builder.react
            ~label:(Printf.sprintf "%s: gain0 w%d" g.name w)
            b fast
            [ (src, 1) ]
            []
        else begin
          (* multiply by num, then halve log2(den) times *)
          let stages = ref 0 in
          let rec halvings acc den =
            if den = 1 then acc
            else begin
              incr stages;
              let nxt = species (Printf.sprintf "w%d.h%d" w !stages) in
              Crn.Builder.react
                ~label:(Printf.sprintf "%s: halve w%d/%d" g.name w !stages)
                b fast
                [ (acc, 2) ]
                [ (nxt, 1) ];
              halvings nxt (den / 2)
            end
          in
          if num = 1 && den = 1 then
            Crn.Builder.transfer
              ~label:(Printf.sprintf "%s: pass w%d" g.name w)
              b fast src producer.(w)
          else begin
            let first =
              if den = 1 then producer.(w)
              else species (Printf.sprintf "w%d.h0" w)
            in
            Crn.Builder.react
              ~label:(Printf.sprintf "%s: gain %d w%d" g.name num w)
              b fast
              [ (src, 1) ]
              [ (first, num) ];
            if den > 1 then begin
              let last = halvings first den in
              Crn.Builder.transfer
                ~label:(Printf.sprintf "%s: gain out w%d" g.name w)
                b fast last producer.(w)
            end
          end
        end
    | Sum ss ->
        List.iteri
          (fun i s ->
            Crn.Builder.transfer
              ~label:(Printf.sprintf "%s: sum w%d.%d" g.name w i)
              b fast (take s) producer.(w))
          ss
  done;
  (* output registers *)
  let output_names =
    List.rev g.outputs
    |> List.mapi (fun i w ->
           let reg = Latch.make d ~name:(Printf.sprintf "%s.y%d" g.name i) in
           let (_ : int) = Latch.sink d reg in
           Crn.Builder.transfer
             ~label:(Printf.sprintf "%s: output %d" g.name i)
             b fast (take w) reg.Latch.input;
           Crn.Builder.name d.Sync_design.builder reg.Latch.store)
  in
  { graph = g; input_names = Array.to_list input_names; output_names }

let inject ?env c ~input ~cycle value =
  if value < 0. then invalid_arg "Sfg.inject: negative sample";
  {
    Ode.Driver.at = Sync_design.injection_time ?env c.graph.design ~cycle;
    species = List.nth c.input_names input;
    amount = value;
  }

(* software interpretation: per cycle, memoized evaluation with delays
   reading their previous stored value and storing this cycle's operand *)
let reference g streams =
  if List.length streams <> g.n_inputs then
    invalid_arg "Sfg.reference: stream count mismatch";
  let len =
    match streams with [] -> 0 | s :: _ -> List.length s
  in
  List.iter
    (fun s ->
      if List.length s <> len then
        invalid_arg "Sfg.reference: ragged streams")
    streams;
  let streams = Array.of_list (List.map Array.of_list streams) in
  let stored = Array.make g.n_nodes 0. in
  let outs = List.rev g.outputs in
  let results = Array.make (List.length outs) [] in
  for n = 0 to len - 1 do
    let memo = Array.make g.n_nodes nan in
    let rec eval w =
      let w = resolve g w in
      if Float.is_nan memo.(w) then begin
        let v =
          match node_of g w with
          | Input i -> streams.(i).(n)
          | Delay _ -> stored.(w)
          | Gain (num, den, s) -> eval s *. float_of_int num /. float_of_int den
          | Sum ss -> List.fold_left (fun acc s -> acc +. eval s) 0. ss
          | Forward _ -> assert false
        in
        memo.(w) <- v
      end;
      memo.(w)
    in
    List.iteri (fun i w -> results.(i) <- eval w :: results.(i)) outs;
    (* update delays simultaneously: evaluate operands first *)
    let pending = ref [] in
    for w = 0 to g.n_nodes - 1 do
      match node_of g w with
      | Delay s -> pending := (w, eval s) :: !pending
      | _ -> ()
    done;
    List.iter (fun (w, v) -> stored.(w) <- v) !pending
  done;
  Array.to_list (Array.map List.rev results)

let response ?env c streams =
  if List.length streams <> c.graph.n_inputs then
    invalid_arg "Sfg.response: stream count mismatch";
  let len = match streams with [] -> 0 | s :: _ -> List.length s in
  if len = 0 then invalid_arg "Sfg.response: empty streams";
  let injections =
    List.concat
      (List.mapi
         (fun i stream ->
           List.mapi (fun cycle v -> inject ?env c ~input:i ~cycle v) stream)
         streams)
  in
  let trace =
    Sync_design.simulate ?env ~injections ~cycles:(len + 1) c.graph.design
  in
  List.map
    (fun name ->
      let s = Ode.Trace.species_index trace name in
      List.init len (fun cycle ->
          Ode.Trace.value_at trace ~species:s
            (Sync_design.sample_time ?env c.graph.design ~cycle)))
    c.output_names

let biquad ?(name = "biquad") design ~b0 ~b1 ~b2 ~a1 ~a2 =
  let g = create design ~name in
  let x = input g in
  let xd1 = delay g x in
  let xd2 = delay g xd1 in
  let yf = forward g in
  let yd1 = delay g yf in
  let yd2 = delay g yd1 in
  let term (num, den) src = gain g ~num ~den src in
  let y =
    add g [ term b0 x; term b1 xd1; term b2 xd2; term a1 yd1; term a2 yd2 ]
  in
  define g yf y;
  output g y;
  g
