let cycle_sample_times ?(hold_fraction = 0.55) trace clock =
  let starts = Molclock.Clock_analysis.cycle_starts trace clock in
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | _ -> []
  in
  List.map (fun (a, b) -> a +. (hold_fraction *. (b -. a))) (pairs starts)

let onehot_states trace design names =
  let clock = design.Sync_design.clock in
  let threshold = design.Sync_design.signal_mass /. 2. in
  List.map
    (fun t -> Analysis.Decode.onehot_at ~threshold trace names t)
    (cycle_sample_times trace clock)

let counter_states trace (ctr : Counter.t) =
  onehot_states trace ctr.fsm.Fsm.design (Fsm.state_names ctr.fsm)

let fsm_states trace (m : Fsm.t) =
  onehot_states trace m.Fsm.design (Fsm.state_names m)

let increments_by_one states ~modulo =
  if modulo <= 0 then invalid_arg "Stochastic.increments_by_one: bad modulo";
  let rec go = function
    | Some a :: (Some b :: _ as rest) ->
        if (a + 1) mod modulo = b then go rest else false
    | None :: _ | _ :: None :: _ -> false
    | [ Some _ ] | [] -> true
  in
  go states
