type t = {
  builder : Crn.Builder.t;
  clock : Molclock.Oscillator.t;
  signal_mass : float;
}

let n_phases = 4

let make ?(clock_mass = 100.) ?(signal_mass = 10.) net =
  let builder = Crn.Builder.on net in
  let clock =
    Molclock.Oscillator.create ~n_phases ~mass:clock_mass
      (Crn.Builder.scoped builder "clk")
  in
  { builder; clock; signal_mass }

let release_phase d = Molclock.Oscillator.phase d.clock 0
let capture_phase d = Molclock.Oscillator.phase d.clock 2
let cleanup_phase d = Molclock.Oscillator.phase d.clock 3

let phase_gated ?label d ~phase src products =
  Crn.Builder.react ?label d.builder Crn.Rates.fast
    [ (src, 1); (phase, 1) ]
    ((phase, 1) :: products)

let clear_on ?label d ~phase species =
  Crn.Builder.consume_by ?label d.builder Crn.Rates.fast ~by:phase species

(* The signal path is catalytic in the clock phases, so the period of a
   standalone clock with the same parameters equals the loaded design's.
   Measuring it needs one stiff simulation; cache by (mass, env). *)
let period_cache : (float * float * float, float) Hashtbl.t = Hashtbl.create 8

let measure_period ~env ~mass =
  let key = (mass, env.Crn.Rates.k_fast, env.Crn.Rates.k_slow) in
  match Hashtbl.find_opt period_cache key with
  | Some p -> p
  | None ->
      let net = Crn.Network.create () in
      let b = Crn.Builder.on net in
      let clk =
        Molclock.Oscillator.create ~n_phases ~mass (Crn.Builder.scoped b "clk")
      in
      (* enough time for ~15 cycles at any plausible rate environment: the
         period scales with 1/k_slow *)
      let horizon = 120. /. env.Crn.Rates.k_slow in
      let trace =
        Ode.Driver.simulate ~method_:Ode.Driver.Rosenbrock ~env ~thin:5
          ~t1:horizon net
      in
      let p =
        match Molclock.Clock_analysis.period trace clk with
        | Some p -> p
        | None ->
            failwith "Sync_design.period: clock failed to oscillate"
      in
      Hashtbl.replace period_cache key p;
      p

let period ?(env = Crn.Rates.default_env) d =
  measure_period ~env ~mass:(Molclock.Oscillator.mass d.clock)

let cycle_time ?env d ~cycle =
  if cycle < 0 then invalid_arg "Sync_design.cycle_time: negative cycle";
  float_of_int cycle *. period ?env d

(* The phases pre-accumulate (each starts trickling up as soon as its
   predecessor-but-one empties), so cycle n's effective windows, measured
   empirically, are: release ~ (n - 0.23)p .. n p, capture ~ (n + 0.25)p ..
   (n + 0.5)p, hold ~ (n + 0.5)p .. (n + 0.75)p. Inputs therefore go in
   just after the cycle boundary and outputs are read mid-hold. *)
let injection_time ?env d ~cycle =
  cycle_time ?env d ~cycle +. (0.05 *. period ?env d)

let sample_time ?env d ~cycle =
  cycle_time ?env d ~cycle +. (0.55 *. period ?env d)

let simulate ?(env = Crn.Rates.default_env) ?injections ?(thin = 10) ~cycles d
    =
  if cycles < 1 then invalid_arg "Sync_design.simulate: cycles must be >= 1";
  let t1 = float_of_int cycles *. period ~env d in
  Ode.Driver.simulate ~method_:Ode.Driver.Rosenbrock ~env ?injections ~thin
    ~t1
    (Crn.Builder.network d.builder)
