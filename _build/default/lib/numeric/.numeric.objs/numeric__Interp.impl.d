lib/numeric/interp.ml: Array Float Vec
