lib/numeric/stats.mli:
