lib/numeric/rng.mli:
