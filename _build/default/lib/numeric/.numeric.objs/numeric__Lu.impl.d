lib/numeric/lu.ml: Array Float List Mat
