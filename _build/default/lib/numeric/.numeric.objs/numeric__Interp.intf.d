lib/numeric/interp.mli:
