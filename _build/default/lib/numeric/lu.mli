(** LU decomposition with partial pivoting.

    Used to solve the linear systems of the semi-implicit (Rosenbrock) ODE
    integrator and for conservation-law analysis of reaction networks. *)

type t
(** A factorization [P A = L U] of a square matrix. *)

exception Singular
(** Raised when the matrix is numerically singular (a pivot underflows). *)

val decompose : Mat.t -> t
(** Factor a square matrix. Raises [Singular] or [Invalid_argument] if the
    matrix is not square. The input matrix is not modified. *)

val solve : t -> Vec.t -> Vec.t
(** [solve lu b] solves [A x = b]. *)

val solve_mat : t -> Mat.t -> Mat.t
(** Solve for each column of a right-hand-side matrix. *)

val det : t -> float
(** Determinant of the factored matrix. *)

val inverse : t -> Mat.t

val solve_system : Mat.t -> Vec.t -> Vec.t
(** One-shot [decompose]+[solve]. *)

val rank : ?eps:float -> Mat.t -> int
(** Numerical rank by row-echelon reduction with threshold [eps]
    (default [1e-9]), for possibly non-square matrices. *)

val nullspace : ?eps:float -> Mat.t -> Vec.t list
(** Basis of the (right) null space of a possibly non-square matrix, used to
    find conservation laws from a stoichiometry matrix. Each returned vector
    [v] satisfies [A v = 0] up to round-off. *)
