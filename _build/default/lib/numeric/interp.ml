let at ~times ~values t =
  let n = Array.length times in
  if n = 0 || n <> Array.length values then
    invalid_arg "Interp.at: empty or mismatched series";
  if t <= times.(0) then values.(0)
  else if t >= times.(n - 1) then values.(n - 1)
  else begin
    (* binary search for the interval [times.(i), times.(i+1)] containing t *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if times.(mid) <= t then lo := mid else hi := mid
    done;
    let t0 = times.(!lo) and t1 = times.(!hi) in
    let frac = if t1 > t0 then (t -. t0) /. (t1 -. t0) else 0. in
    values.(!lo) +. (frac *. (values.(!hi) -. values.(!lo)))
  end

let resample ~times ~values ~grid =
  Array.map (fun t -> at ~times ~values t) grid

let uniform_grid ~t0 ~t1 ~n =
  if n < 2 then invalid_arg "Interp.uniform_grid: need at least 2 points";
  let step = (t1 -. t0) /. float_of_int (n - 1) in
  Array.init n (fun i -> t0 +. (float_of_int i *. step))

let max_abs_diff ~times_a ~values_a ~times_b ~values_b ~n =
  let t0 = Float.max times_a.(0) times_b.(0) in
  let t1 =
    Float.min
      times_a.(Array.length times_a - 1)
      times_b.(Array.length times_b - 1)
  in
  let grid = uniform_grid ~t0 ~t1 ~n in
  let a = resample ~times:times_a ~values:values_a ~grid in
  let b = resample ~times:times_b ~values:values_b ~grid in
  Vec.dist_inf a b
