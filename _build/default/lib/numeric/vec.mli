(** Dense vectors of floats.

    Thin wrappers over [float array] used throughout the simulators. All
    binary operations require operands of equal length and raise
    [Invalid_argument] otherwise. *)

type t = float array

val create : int -> float -> t
(** [create n x] is a vector of [n] copies of [x]. *)

val init : int -> (int -> float) -> t

val copy : t -> t

val dim : t -> int

val fill : t -> float -> unit

val blit : src:t -> dst:t -> unit
(** Copy [src] into [dst]; dimensions must agree. *)

val map : (float -> float) -> t -> t

val map2 : (float -> float -> float) -> t -> t -> t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val axpy : float -> t -> t -> unit
(** [axpy a x y] performs [y <- a*x + y] in place. *)

val dot : t -> t -> float

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float
(** Maximum absolute entry; [0.] for the empty vector. *)

val dist_inf : t -> t -> float
(** Infinity-norm distance between two vectors. *)

val sum : t -> float

val max_elt : t -> float
(** Largest entry. Raises [Invalid_argument] on the empty vector. *)

val min_elt : t -> float

val argmax : t -> int
(** Index of the (first) largest entry. Raises on the empty vector. *)

val clamp_nonneg : t -> unit
(** Replace each negative entry with [0.] in place (concentrations cannot be
    negative; integrators may undershoot by a rounding error). *)

val pp : Format.formatter -> t -> unit
