(** Dense row-major matrices of floats.

    Sized for the Jacobians of chemical reaction networks (tens to a few
    hundred species), so plain [float array array] storage with
    straightforward algorithms is the right tradeoff. *)

type t = float array array

val create : int -> int -> float -> t
(** [create r c x] is an [r] x [c] matrix filled with [x]. *)

val init : int -> int -> (int -> int -> float) -> t

val identity : int -> t

val copy : t -> t

val dims : t -> int * int

val transpose : t -> t

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val mul : t -> t -> t
(** Matrix product. Raises [Invalid_argument] on inner-dimension mismatch. *)

val mul_vec : t -> Vec.t -> Vec.t
(** Matrix-vector product. *)

val norm_inf : t -> float
(** Maximum absolute row sum. *)

val equal : ?eps:float -> t -> t -> bool
(** Entry-wise comparison with tolerance (default [1e-12]). *)

val pp : Format.formatter -> t -> unit
