(** Summary statistics over float arrays, used by the analysis and
    benchmark-reporting layers. *)

val mean : float array -> float
(** Arithmetic mean. Raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance ([0.] for fewer than two samples). *)

val stddev : float array -> float

val median : float array -> float
(** Median (average of middle two for even length). Does not modify the
    input. Raises on an empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation between
    order statistics. *)

val minimum : float array -> float

val maximum : float array -> float

val rms : float array -> float
(** Root mean square. *)

val mean_ci95 : float array -> float * float
(** Mean and its 95% normal-approximation confidence half-width. *)
