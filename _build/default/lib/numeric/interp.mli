(** Piecewise-linear interpolation of sampled time series.

    Simulation traces from adaptive integrators are sampled at irregular
    times; comparing two traces (e.g. an abstract network against its
    DNA-strand-displacement compilation) requires resampling both onto a
    common grid. *)

val at : times:float array -> values:float array -> float -> float
(** [at ~times ~values t] linearly interpolates the series at [t]. [times]
    must be strictly increasing and nonempty; outside the sampled range the
    nearest endpoint value is returned (constant extrapolation). *)

val resample :
  times:float array -> values:float array -> grid:float array -> float array
(** Interpolate the series at every point of [grid]. *)

val uniform_grid : t0:float -> t1:float -> n:int -> float array
(** [n] evenly spaced points from [t0] to [t1] inclusive ([n >= 2]). *)

val max_abs_diff :
  times_a:float array ->
  values_a:float array ->
  times_b:float array ->
  values_b:float array ->
  n:int ->
  float
(** Maximum pointwise absolute difference of two series compared on an
    [n]-point uniform grid spanning the overlap of their time ranges. *)
