let nonempty xs = if Array.length xs = 0 then invalid_arg "Stats: empty input"

let mean xs =
  nonempty xs;
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) ** 2.)) 0. xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let sorted xs =
  let ys = Array.copy xs in
  Array.sort compare ys;
  ys

let median xs =
  nonempty xs;
  let ys = sorted xs in
  let n = Array.length ys in
  if n mod 2 = 1 then ys.(n / 2)
  else (ys.((n / 2) - 1) +. ys.(n / 2)) /. 2.

let percentile xs p =
  nonempty xs;
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let ys = sorted xs in
  let n = Array.length ys in
  if n = 1 then ys.(0)
  else begin
    let pos = p /. 100. *. float_of_int (n - 1) in
    let lo = min (n - 2) (int_of_float pos) in
    let frac = pos -. float_of_int lo in
    ys.(lo) +. (frac *. (ys.(lo + 1) -. ys.(lo)))
  end

let minimum xs =
  nonempty xs;
  Array.fold_left Float.min xs.(0) xs

let maximum xs =
  nonempty xs;
  Array.fold_left Float.max xs.(0) xs

let rms xs =
  nonempty xs;
  let acc = Array.fold_left (fun a x -> a +. (x *. x)) 0. xs in
  sqrt (acc /. float_of_int (Array.length xs))

let mean_ci95 xs =
  let m = mean xs in
  let n = float_of_int (Array.length xs) in
  (m, 1.96 *. stddev xs /. sqrt n)
