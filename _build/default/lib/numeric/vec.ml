type t = float array

let create n x = Array.make n x
let init = Array.init
let copy = Array.copy
let dim = Array.length
let fill v x = Array.fill v 0 (Array.length v) x

let check_dim a b =
  if Array.length a <> Array.length b then
    invalid_arg "Vec: dimension mismatch"

let blit ~src ~dst =
  check_dim src dst;
  Array.blit src 0 dst 0 (Array.length src)

let map = Array.map

let map2 f a b =
  check_dim a b;
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let add a b = map2 ( +. ) a b
let sub a b = map2 ( -. ) a b
let scale s a = Array.map (fun x -> s *. x) a

let axpy a x y =
  check_dim x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let dot a b =
  check_dim a b;
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm2 a = sqrt (dot a a)

let norm_inf a =
  let acc = ref 0. in
  Array.iter (fun x -> if Float.abs x > !acc then acc := Float.abs x) a;
  !acc

let dist_inf a b =
  check_dim a b;
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    let d = Float.abs (a.(i) -. b.(i)) in
    if d > !acc then acc := d
  done;
  !acc

let sum a = Array.fold_left ( +. ) 0. a

let nonempty a = if Array.length a = 0 then invalid_arg "Vec: empty vector"

let max_elt a =
  nonempty a;
  Array.fold_left Float.max a.(0) a

let min_elt a =
  nonempty a;
  Array.fold_left Float.min a.(0) a

let argmax a =
  nonempty a;
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if a.(i) > a.(!best) then best := i
  done;
  !best

let clamp_nonneg a =
  for i = 0 to Array.length a - 1 do
    if a.(i) < 0. then a.(i) <- 0.
  done

let pp fmt a =
  Format.fprintf fmt "[|";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf fmt "; ";
      Format.fprintf fmt "%g" x)
    a;
  Format.fprintf fmt "|]"
