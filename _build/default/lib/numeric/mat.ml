type t = float array array

let create r c x = Array.init r (fun _ -> Array.make c x)
let init r c f = Array.init r (fun i -> Array.init c (fun j -> f i j))
let identity n = init n n (fun i j -> if i = j then 1. else 0.)
let copy m = Array.map Array.copy m

let dims m =
  let r = Array.length m in
  (r, if r = 0 then 0 else Array.length m.(0))

let transpose m =
  let r, c = dims m in
  init c r (fun i j -> m.(j).(i))

let check_same a b =
  if dims a <> dims b then invalid_arg "Mat: dimension mismatch"

let map2 f a b =
  check_same a b;
  let r, c = dims a in
  init r c (fun i j -> f a.(i).(j) b.(i).(j))

let add a b = map2 ( +. ) a b
let sub a b = map2 ( -. ) a b
let scale s m = Array.map (Array.map (fun x -> s *. x)) m

let mul a b =
  let ra, ca = dims a and rb, cb = dims b in
  if ca <> rb then invalid_arg "Mat.mul: inner dimension mismatch";
  init ra cb (fun i j ->
      let acc = ref 0. in
      for k = 0 to ca - 1 do
        acc := !acc +. (a.(i).(k) *. b.(k).(j))
      done;
      !acc)

let mul_vec m v =
  let r, c = dims m in
  if c <> Array.length v then invalid_arg "Mat.mul_vec: dimension mismatch";
  Array.init r (fun i ->
      let acc = ref 0. in
      for j = 0 to c - 1 do
        acc := !acc +. (m.(i).(j) *. v.(j))
      done;
      !acc)

let norm_inf m =
  Array.fold_left
    (fun acc row ->
      let s = Array.fold_left (fun a x -> a +. Float.abs x) 0. row in
      Float.max acc s)
    0. m

let equal ?(eps = 1e-12) a b =
  dims a = dims b
  &&
  let r, c = dims a in
  let ok = ref true in
  for i = 0 to r - 1 do
    for j = 0 to c - 1 do
      if Float.abs (a.(i).(j) -. b.(i).(j)) > eps then ok := false
    done
  done;
  !ok

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  Array.iter (fun row -> Format.fprintf fmt "%a@," Vec.pp row) m;
  Format.fprintf fmt "@]"
