(** Dual-rail Boolean logic with molecular reactions.

    The group's follow-on work implements digital logic by representing
    each Boolean signal as {e two} molecular types: the signal is 1 when
    the [t] (true) rail holds the quantity and 0 when the [f] (false) rail
    does. Gates are then pure pairing reactions — each combination of input
    rails transfers into the appropriate output rail — which makes them
    exact and rate-independent: no thresholds, no absence detection.

    Inputs are consumed. Every input must be {e valid} (exactly one rail
    holding the quantity); gates preserve validity and quantity, so gates
    compose arbitrarily. Fanout duplicates both rails. *)

type signal = { t : int; f : int }

val fresh : Crn.Builder.t -> name:string -> signal
(** Uninitialized signal (both rails 0): an output, or an input to set
    later. Rails are named [<name>.t] and [<name>.f]. *)

val const : Crn.Builder.t -> name:string -> value:bool -> level:float -> signal
(** A signal preset to a Boolean value with the given quantity. *)

val set : Crn.Builder.t -> signal -> value:bool -> level:float -> unit
(** Preset an existing signal's initial condition. *)

val read :
  Crn.Builder.t -> signal -> Numeric.Vec.t -> bool option
(** Decode a state: [Some v] when exactly one rail dominates (ratio >= 3),
    [None] for invalid/undriven signals. *)

val notg : ?rate:Crn.Rates.t -> Crn.Builder.t -> name:string -> signal -> signal
(** NOT is free: the output is the input with rails swapped — no reactions
    at all. The [name] is unused (kept for interface uniformity) and no
    species are created. *)

val andg : ?rate:Crn.Rates.t -> Crn.Builder.t -> name:string -> signal -> signal -> signal
val org : ?rate:Crn.Rates.t -> Crn.Builder.t -> name:string -> signal -> signal -> signal
val nandg : ?rate:Crn.Rates.t -> Crn.Builder.t -> name:string -> signal -> signal -> signal
val norg : ?rate:Crn.Rates.t -> Crn.Builder.t -> name:string -> signal -> signal -> signal
val xorg : ?rate:Crn.Rates.t -> Crn.Builder.t -> name:string -> signal -> signal -> signal
val xnorg : ?rate:Crn.Rates.t -> Crn.Builder.t -> name:string -> signal -> signal -> signal
(** Two-input gates: four pairing reactions
    [a_rail + b_rail -> out_rail], one per input combination. [rate]
    defaults to slow (standalone discipline); clocked designs pass fast. *)

val fanout2 : ?rate:Crn.Rates.t -> Crn.Builder.t -> name:string -> signal -> signal * signal
(** Duplicate a signal (each rail fans out to both copies' rails). *)

val gate_by_table :
  ?rate:Crn.Rates.t ->
  Crn.Builder.t ->
  name:string ->
  table:(bool -> bool -> bool) ->
  signal ->
  signal ->
  signal
(** Generic two-input gate from a truth table (how the named gates are
    built). *)

val half_adder :
  ?rate:Crn.Rates.t ->
  Crn.Builder.t ->
  name:string ->
  signal ->
  signal ->
  signal * signal
(** [(sum, carry)] — a worked composition: fans both inputs out to an XOR
    and an AND. *)

val full_adder :
  ?rate:Crn.Rates.t ->
  Crn.Builder.t ->
  name:string ->
  signal ->
  signal ->
  signal ->
  signal * signal
(** [full_adder b ~name a x cin] is [(sum, carry_out)]: two half adders
    plus an OR on the carries. *)

val ripple_adder :
  ?rate:Crn.Rates.t ->
  Crn.Builder.t ->
  name:string ->
  signal list ->
  signal list ->
  signal list * signal
(** [ripple_adder b ~name xs ys] adds two equal-width little-endian
    dual-rail words: [(sum bits, carry_out)]. Raises [Invalid_argument] on
    empty or unequal widths. A molecular ripple-carry adder settles in one
    combinational wave — every gate is just pairing reactions — so no
    clocking is needed for a single addition. *)
