(** Rate-independent arithmetic on concentrations.

    These are the memoryless ("combinational") constructs of the group's
    prior work: the computation is exact at steady state and depends only on
    which reactions exist, never on their rates. Inputs are consumed
    (signals in this paradigm are quantities that move, not levels that
    hold); use {!fanout} first when an input feeds several modules.

    Every constructor creates its output (and internals) under the given
    instance [name] inside the builder's scope and returns the output
    species.

    The optional [rate] (default slow) sets the {e production} reactions'
    category. Standalone combinational use keeps the default: exactness of
    the annihilation-based modules ([sub], [max_of]) relies on annihilation
    (always fast) dominating production. Clocked designs instead pass
    [Crn.Rates.fast] so computation completes well within a clock phase, and
    rely on the clock's guard phase to let annihilations settle. *)

val transfer : ?rate:Crn.Rates.t -> Crn.Builder.t -> name:string -> int -> int
(** [Y := X]. Reaction [X -> Y]. *)

val add : ?rate:Crn.Rates.t -> Crn.Builder.t -> name:string -> int -> int -> int
(** [Z := X1 + X2]. Reactions [X1 -> Z], [X2 -> Z]. *)

val sum : ?rate:Crn.Rates.t -> Crn.Builder.t -> name:string -> int list -> int
(** n-ary {!add}. Raises [Invalid_argument] on the empty list. *)

val sub : ?rate:Crn.Rates.t -> Crn.Builder.t -> name:string -> int -> int -> int
(** [Z := max(0, X1 - X2)]: [X1 -> Z] and fast pairwise annihilation
    [Z + X2' -> 0] against the relabelled subtrahend. *)

val min_of : ?rate:Crn.Rates.t -> Crn.Builder.t -> name:string -> int -> int -> int
(** [Z := min(X1, X2)] by pairing: [X1 + X2 -> Z] — pairs convert until
    the smaller operand is exhausted. *)

val max_of : ?rate:Crn.Rates.t -> Crn.Builder.t -> name:string -> int -> int -> int
(** [Z := max(X1, X2)] via [max = (x1 + x2) - min]: internally fans each
    input out to an adder and a pairing module whose output annihilates the
    sum's. *)

val scale :
  ?rate:Crn.Rates.t -> Crn.Builder.t -> name:string -> num:int -> den:int -> int -> int
(** [Y := (num/den) * X] (integer part when [den] does not divide the
    quantity): reaction [den X -> num Y]. [den <= 2] keeps the network
    DSD-compilable. Raises [Invalid_argument] unless [num >= 1],
    [den >= 1]. *)

val double : ?rate:Crn.Rates.t -> Crn.Builder.t -> name:string -> int -> int
(** [scale ~num:2 ~den:1]. *)

val halve : ?rate:Crn.Rates.t -> Crn.Builder.t -> name:string -> int -> int
(** [scale ~num:1 ~den:2] — used by the paper's moving-average filter. *)

val fanout :
  ?rate:Crn.Rates.t -> Crn.Builder.t -> name:string -> copies:int -> int -> int list
(** [copies] outputs each receiving the full quantity of the input:
    [X -> Y1 + ... + Yn]. Raises [Invalid_argument] if [copies < 1]. *)
