(** Rate-independent comparison.

    Comparison by pairwise annihilation: equal quantities destroy each other
    and whatever remains identifies the larger operand. Outputs are
    dual-rail {e residues}: [gt] holds [max(0, x1 - x2)] and [lt] holds
    [max(0, x2 - x1)]; at most one is nonzero, and both zero means the
    operands were equal. Downstream logic treats "presence of [gt]" as the
    boolean [x1 > x2] (per the paper's low/high concentration convention). *)

type result = { gt : int; lt : int }

val compare : Crn.Builder.t -> name:string -> int -> int -> result
(** Consumes both inputs. Reactions: [X1 ->slow gt], [X2 ->slow lt],
    [gt + lt ->fast 0]. *)

val threshold : Crn.Builder.t -> name:string -> level:float -> int -> result
(** Compare an input against a constant: an internal reference species is
    initialized to [level] and compared. [gt] nonzero iff the input exceeds
    [level]. Raises [Invalid_argument] if [level < 0.]. *)

val equal_indicator :
  Crn.Builder.t -> name:string -> result -> int
(** An absence indicator over both residues: accumulates only when the
    comparison came out equal. *)
