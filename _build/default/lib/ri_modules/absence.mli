(** Absence indicators — the key sequencing primitive.

    An absence indicator [i] for a set of watched species is generated
    continuously at a slow, zero-order rate and consumed quickly
    (catalytically) by any watched species that is present. It therefore
    only accumulates when every watched species is absent, and reactions
    gated on [i] fire only then. This is how the paper orders phases without
    depending on specific rates: a phase cannot begin until the previous
    phase's species have been completely consumed. *)

val indicator : Crn.Builder.t -> name:string -> watched:int list -> int
(** Create the indicator species (under the builder's scope) and its
    generation/consumption reactions:
    [0 ->slow i] and, per watched species [S], [i + S ->fast S].
    Returns the indicator's species index. Raises [Invalid_argument] on an
    empty watch list (an indicator of nothing would grow without bound). *)

val gate :
  ?label:string ->
  Crn.Builder.t ->
  indicator:int ->
  int ->
  int ->
  unit
(** [gate b ~indicator x y] adds the gated transfer [i + X ->slow Y]: one
    unit of [X] becomes [Y], consuming one unit of the indicator — so the
    transfer only proceeds while the watched species are absent. *)

val gate_to :
  ?label:string ->
  Crn.Builder.t ->
  indicator:int ->
  int ->
  (int * int) list ->
  unit
(** Generalized {!gate}: [i + X ->slow products]. *)
