open Crn

type result = { gt : int; lt : int }

let compare b ~name x1 x2 =
  let gt = Builder.species b (name ^ ".gt")
  and lt = Builder.species b (name ^ ".lt") in
  Builder.transfer ~label:(name ^ ": lhs in") b Rates.slow x1 gt;
  Builder.transfer ~label:(name ^ ": rhs in") b Rates.slow x2 lt;
  Builder.react ~label:(name ^ ": annihilation") b Rates.fast
    [ (gt, 1); (lt, 1) ]
    [];
  { gt; lt }

let threshold b ~name ~level x =
  if level < 0. then invalid_arg "Compare.threshold: negative level";
  let reference = Builder.species b (name ^ ".ref") in
  Builder.init b reference level;
  compare b ~name x reference

let equal_indicator b ~name { gt; lt } =
  Absence.indicator b ~name:(name ^ ".eq") ~watched:[ gt; lt ]
