open Crn

type signal = { t : int; f : int }

let fresh b ~name =
  { t = Builder.species b (name ^ ".t"); f = Builder.species b (name ^ ".f") }

let set b s ~value ~level =
  if level <= 0. then invalid_arg "Dual_rail.set: level must be positive";
  Builder.init b (if value then s.t else s.f) level

let const b ~name ~value ~level =
  let s = fresh b ~name in
  set b s ~value ~level;
  s

let read b s state =
  ignore b;
  let t = state.(s.t) and f = state.(s.f) in
  if t > 3. *. f && t > 1e-6 then Some true
  else if f > 3. *. t && f > 1e-6 then Some false
  else None

let notg ?rate _b ~name s =
  ignore rate;
  ignore name;
  { t = s.f; f = s.t }

let gate_by_table ?(rate = Rates.slow) b ~name ~table a bb =
  let out = fresh b ~name in
  let rail s v = if v then s.t else s.f in
  List.iter
    (fun (va, vb) ->
      Builder.react
        ~label:(Printf.sprintf "%s: %b,%b" name va vb)
        b rate
        [ (rail a va, 1); (rail bb vb, 1) ]
        [ (rail out (table va vb), 1) ])
    [ (false, false); (false, true); (true, false); (true, true) ];
  out

let andg ?rate b ~name a bb = gate_by_table ?rate b ~name ~table:( && ) a bb
let org ?rate b ~name a bb = gate_by_table ?rate b ~name ~table:( || ) a bb

let nandg ?rate b ~name a bb =
  gate_by_table ?rate b ~name ~table:(fun x y -> not (x && y)) a bb

let norg ?rate b ~name a bb =
  gate_by_table ?rate b ~name ~table:(fun x y -> not (x || y)) a bb

let xorg ?rate b ~name a bb =
  gate_by_table ?rate b ~name ~table:( <> ) a bb

let xnorg ?rate b ~name a bb =
  gate_by_table ?rate b ~name ~table:( = ) a bb

let fanout2 ?(rate = Rates.slow) b ~name s =
  let c1 = fresh b ~name:(name ^ ".c1") in
  let c2 = fresh b ~name:(name ^ ".c2") in
  Builder.react ~label:(name ^ ": fan t") b rate
    [ (s.t, 1) ]
    [ (c1.t, 1); (c2.t, 1) ];
  Builder.react ~label:(name ^ ": fan f") b rate
    [ (s.f, 1) ]
    [ (c1.f, 1); (c2.f, 1) ];
  (c1, c2)

let half_adder ?rate b ~name a bb =
  let a1, a2 = fanout2 ?rate b ~name:(name ^ ".fa") a in
  let b1, b2 = fanout2 ?rate b ~name:(name ^ ".fb") bb in
  let sum = xorg ?rate b ~name:(name ^ ".sum") a1 b1 in
  let carry = andg ?rate b ~name:(name ^ ".carry") a2 b2 in
  (sum, carry)

let full_adder ?rate b ~name a x cin =
  let s1, c1 = half_adder ?rate b ~name:(name ^ ".ha1") a x in
  let sum, c2 = half_adder ?rate b ~name:(name ^ ".ha2") s1 cin in
  let carry = org ?rate b ~name:(name ^ ".cor") c1 c2 in
  (sum, carry)

let ripple_adder ?rate b ~name xs ys =
  let n = List.length xs in
  if n = 0 || List.length ys <> n then
    invalid_arg "Dual_rail.ripple_adder: empty or unequal widths";
  let carry0 = const b ~name:(name ^ ".c0") ~value:false ~level:10. in
  let rec go i carry acc = function
    | [], [] -> (List.rev acc, carry)
    | x :: xs, y :: ys ->
        let sum, carry' =
          full_adder ?rate b ~name:(Printf.sprintf "%s.fa%d" name i) x y carry
        in
        go (i + 1) carry' (sum :: acc) (xs, ys)
    | _ -> assert false
  in
  go 0 carry0 [] (xs, ys)
