lib/ri_modules/compare.mli: Crn
