lib/ri_modules/absence.mli: Crn
