lib/ri_modules/absence.ml: Crn List Printf
