lib/ri_modules/arith.ml: Builder Crn List Printf Rates
