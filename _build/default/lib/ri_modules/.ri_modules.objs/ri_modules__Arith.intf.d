lib/ri_modules/arith.mli: Crn
