lib/ri_modules/dual_rail.ml: Array Builder Crn List Printf Rates
