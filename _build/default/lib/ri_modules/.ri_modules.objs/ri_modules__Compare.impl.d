lib/ri_modules/compare.ml: Absence Builder Crn Rates
