lib/ri_modules/dual_rail.mli: Crn Numeric
