let indicator b ~name ~watched =
  if watched = [] then invalid_arg "Absence.indicator: empty watch list";
  let i = Crn.Builder.species b name in
  Crn.Builder.source ~label:(name ^ " generation") b Crn.Rates.slow i;
  List.iter
    (fun s ->
      Crn.Builder.consume_by
        ~label:(Printf.sprintf "%s consumed by %s" name (Crn.Builder.name b s))
        b Crn.Rates.fast ~by:s i)
    watched;
  i

let gate ?label b ~indicator x y =
  Crn.Builder.react ?label b Crn.Rates.slow
    [ (indicator, 1); (x, 1) ]
    [ (y, 1) ]

let gate_to ?label b ~indicator x products =
  Crn.Builder.react ?label b Crn.Rates.slow [ (indicator, 1); (x, 1) ] products
