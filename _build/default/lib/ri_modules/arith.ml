open Crn

let out_species b name = Builder.species b (name ^ ".out")

let transfer ?(rate = Rates.slow) b ~name x =
  let z = out_species b name in
  Builder.transfer ~label:(name ^ ": transfer") b rate x z;
  z

let add ?(rate = Rates.slow) b ~name x1 x2 =
  let z = out_species b name in
  Builder.transfer ~label:(name ^ ": add lhs") b rate x1 z;
  Builder.transfer ~label:(name ^ ": add rhs") b rate x2 z;
  z

let sum ?(rate = Rates.slow) b ~name inputs =
  if inputs = [] then invalid_arg "Arith.sum: no inputs";
  let z = out_species b name in
  List.iteri
    (fun i x ->
      Builder.transfer ~label:(Printf.sprintf "%s: add #%d" name i) b rate x z)
    inputs;
  z

let sub ?(rate = Rates.slow) b ~name x1 x2 =
  let z = out_species b name in
  let neg = Builder.species b (name ^ ".neg") in
  Builder.transfer ~label:(name ^ ": minuend in") b rate x1 z;
  Builder.transfer ~label:(name ^ ": subtrahend in") b rate x2 neg;
  Builder.react ~label:(name ^ ": annihilation") b Rates.fast
    [ (z, 1); (neg, 1) ]
    [];
  z

let min_of ?(rate = Rates.slow) b ~name x1 x2 =
  let z = out_species b name in
  Builder.react ~label:(name ^ ": pairing") b rate
    [ (x1, 1); (x2, 1) ]
    [ (z, 1) ];
  z

let max_of ?(rate = Rates.slow) b ~name x1 x2 =
  (* max(x1,x2) = (x1 + x2) - min(x1,x2); each input is fanned out to the
     adder and the pairing module *)
  let scoped = Builder.scoped b name in
  let a1 = Builder.species scoped "a1"
  and a2 = Builder.species scoped "a2"
  and m1 = Builder.species scoped "m1"
  and m2 = Builder.species scoped "m2" in
  Builder.react ~label:(name ^ ": fan x1") b rate
    [ (x1, 1) ]
    [ (a1, 1); (m1, 1) ];
  Builder.react ~label:(name ^ ": fan x2") b rate
    [ (x2, 1) ]
    [ (a2, 1); (m2, 1) ];
  let total = add ~rate scoped ~name:"total" a1 a2 in
  let minimum = min_of ~rate scoped ~name:"min" m1 m2 in
  let z = out_species b name in
  Builder.transfer ~label:(name ^ ": total in") b rate total z;
  Builder.react ~label:(name ^ ": subtract min") b Rates.fast
    [ (z, 1); (minimum, 1) ]
    [];
  z

let scale ?(rate = Rates.slow) b ~name ~num ~den x =
  if num < 1 || den < 1 then invalid_arg "Arith.scale: num and den must be >= 1";
  let y = out_species b name in
  Builder.react
    ~label:(Printf.sprintf "%s: scale %d/%d" name num den)
    b rate
    [ (x, den) ]
    [ (y, num) ];
  y

let double ?rate b ~name x = scale ?rate b ~name ~num:2 ~den:1 x
let halve ?rate b ~name x = scale ?rate b ~name ~num:1 ~den:2 x

let fanout ?(rate = Rates.slow) b ~name ~copies x =
  if copies < 1 then invalid_arg "Arith.fanout: copies must be >= 1";
  let outs =
    List.init copies (fun i ->
        Builder.species b (Printf.sprintf "%s.out%d" name i))
  in
  Builder.react ~label:(name ^ ": fanout") b rate
    [ (x, 1) ]
    (List.map (fun o -> (o, 1)) outs);
  outs
