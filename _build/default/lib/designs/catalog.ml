type entry = {
  name : string;
  description : string;
  build : unit -> Crn.Network.t;
}

let clock n () =
  let net = Crn.Network.create () in
  let b = Crn.Builder.on net in
  let (_ : Molclock.Oscillator.t) =
    Molclock.Oscillator.create ~n_phases:n (Crn.Builder.scoped b "clk")
  in
  net

let counter bits () =
  let net = Crn.Network.create () in
  let d = Core.Sync_design.make net in
  let (_ : Core.Counter.t) = Core.Counter.free_running d ~bits in
  net

let gated_counter bits () =
  let net = Crn.Network.create () in
  let d = Core.Sync_design.make net in
  let (_ : Core.Counter.t) = Core.Counter.gated d ~bits in
  net

let lfsr bits taps () =
  let net = Crn.Network.create () in
  let d = Core.Sync_design.make net in
  let (_ : Core.Lfsr.t) = Core.Lfsr.make d ~bits ~taps ~seed:1 in
  net

let moving_average taps () =
  let net = Crn.Network.create () in
  let d = Core.Sync_design.make net in
  let (_ : Core.Filter.t) = Core.Filter.moving_average d ~taps in
  net

let iir () =
  let net = Crn.Network.create () in
  let d = Core.Sync_design.make net in
  let (_ : Core.Filter.t) = Core.Filter.iir_smoother d in
  net

let chain n () =
  let net = Crn.Network.create () in
  let b = Crn.Builder.on net in
  let (_ : Async_mol.Delay_chain.t) =
    Async_mol.Delay_chain.make ~input:80. b ~n
  in
  net

let biquad () =
  let net = Crn.Network.create () in
  let d = Core.Sync_design.make net in
  let g =
    Core.Sfg.biquad d ~b0:(1, 2) ~b1:(1, 4) ~b2:(1, 8) ~a1:(1, 4) ~a2:(1, 8)
  in
  let (_ : Core.Sfg.compiled) = Core.Sfg.compile g in
  net

let mult () =
  let net = Crn.Network.create () in
  let d = Core.Sync_design.make net in
  let (_ : Core.Iterative.t) = Core.Iterative.multiplier d ~a:3. ~count:4 in
  net

let pow () =
  let net = Crn.Network.create () in
  let d = Core.Sync_design.make net in
  let (_ : Core.Iterative.t) = Core.Iterative.power2 d ~n:5 in
  net

let sub () =
  let net = Crn.Network.create () in
  let b = Crn.Builder.on net in
  let x1 = Crn.Builder.species b "X1" and x2 = Crn.Builder.species b "X2" in
  Crn.Builder.init b x1 9.;
  Crn.Builder.init b x2 4.;
  let (_ : int) = Ri_modules.Arith.sub b ~name:"sub" x1 x2 in
  net

let adder () =
  let net = Crn.Network.create () in
  let b = Crn.Builder.on net in
  let x1 = Crn.Builder.species b "X1" and x2 = Crn.Builder.species b "X2" in
  Crn.Builder.init b x1 30.;
  Crn.Builder.init b x2 12.;
  let (_ : int) = Ri_modules.Arith.add b ~name:"adder" x1 x2 in
  net

let all () =
  [
    { name = "clock3"; description = "three-phase molecular clock"; build = clock 3 };
    { name = "clock4"; description = "four-phase molecular clock"; build = clock 4 };
    { name = "counter2"; description = "2-bit free-running counter"; build = counter 2 };
    { name = "counter3"; description = "3-bit free-running counter"; build = counter 3 };
    {
      name = "gated-counter2";
      description = "2-bit counter with count/hold input";
      build = gated_counter 2;
    };
    { name = "lfsr3"; description = "3-bit maximal LFSR"; build = lfsr 3 [ 1; 2 ] };
    { name = "lfsr4"; description = "4-bit maximal LFSR"; build = lfsr 4 [ 2; 3 ] };
    { name = "ma2"; description = "2-tap moving-average filter"; build = moving_average 2 };
    { name = "ma4"; description = "4-tap moving-average filter"; build = moving_average 4 };
    { name = "iir"; description = "first-order IIR smoother"; build = iir };
    { name = "biquad"; description = "second-order (biquad) IIR filter via the SFG compiler"; build = biquad };
    { name = "chain1"; description = "async delay chain, 1 element"; build = chain 1 };
    { name = "chain2"; description = "async delay chain, 2 elements"; build = chain 2 };
    { name = "chain4"; description = "async delay chain, 4 elements"; build = chain 4 };
    { name = "mult"; description = "iterative multiplier (3 x 4)"; build = mult };
    { name = "pow"; description = "iterative 2^5"; build = pow };
    { name = "sub"; description = "combinational subtractor"; build = sub };
    { name = "adder"; description = "combinational adder"; build = adder };
  ]

let find name = List.find_opt (fun e -> e.name = name) (all ())
let names () = List.map (fun e -> e.name) (all ())

let build name =
  match find name with
  | Some e -> e.build ()
  | None ->
      invalid_arg
        (Printf.sprintf "unknown design %S; available: %s" name
           (String.concat ", " (names ())))
