(** Named generators for the standard designs, shared by the command-line
    tools and the benchmark harness. *)

type entry = {
  name : string;
  description : string;
  build : unit -> Crn.Network.t;
}

val all : unit -> entry list
(** Every named design:
    ["clock3"], ["clock4"], ["counter2"], ["counter3"], ["gated-counter2"],
    ["lfsr3"], ["lfsr4"], ["ma2"], ["ma4"], ["iir"], ["biquad"],
    ["chain1"], ["chain2"], ["chain4"], ["mult"], ["pow"], ["sub"],
    ["adder"]. *)

val find : string -> entry option

val names : unit -> string list

val build : string -> Crn.Network.t
(** Raises [Invalid_argument] with the available names for an unknown
    design. *)
