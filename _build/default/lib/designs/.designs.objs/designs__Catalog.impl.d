lib/designs/catalog.ml: Async_mol Core Crn List Molclock Printf Ri_modules String
