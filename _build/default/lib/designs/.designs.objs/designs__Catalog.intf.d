lib/designs/catalog.mli: Crn
