lib/molclock/oscillator.ml: Array Builder Crn Printf Rates Ri_modules
