lib/molclock/clock_analysis.mli: Ode Oscillator
