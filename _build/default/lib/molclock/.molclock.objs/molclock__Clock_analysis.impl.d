lib/molclock/clock_analysis.ml: Analysis Array Float List Ode Oscillator
