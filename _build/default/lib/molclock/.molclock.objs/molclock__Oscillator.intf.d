lib/molclock/oscillator.mli: Crn
