(* SSA engine benchmark: incremental-propensity direct method vs the naive
   (recompute-everything) baseline, plus multicore ensemble scaling.

   Emits machine-readable BENCH_ssa.json in the current directory so the
   perf trajectory is tracked PR over PR:

     dune exec bench/bench_ssa.exe                       # full suite
     dune exec bench/bench_ssa.exe -- quick              # CI smoke
     dune exec bench/bench_ssa.exe -- --out path.json    # explicit output

   JSON schema (mrsc-bench-ssa/2):
     engine.networks[]: per-network events/sec for baseline and
       incremental engines, their ratio ("speedup"), and dependency-graph
       stats (n_reactions, mean/max affected-set size);
     ensemble: a scaling matrix — one row per requested job count with
       the host core count, the effective (clamped) job count, the chunk
       size, wall time vs jobs=1, the scaling ratio and its per-core
       efficiency, an oversubscribed flag, and whether the results were
       byte-identical across job counts (they must be). *)

(* The seed implementation of Gillespie.run, kept verbatim as the
   baseline: every propensity and the full sum recomputed per event,
   selection by flat linear scan. The propensity function is also the
   seed's copy (exception-based early exit, bounds-checked accesses), so
   the comparison is against the actual pre-optimization code, not the
   current shared hot path. *)
let naive_propensity r (counts : int array) =
  let open Ssa.Compiled in
  let acc = ref r.k in
  (try
     for i = 0 to Array.length r.reactant_species - 1 do
       let n = counts.(r.reactant_species.(i)) in
       let c = r.reactant_coeff.(i) in
       if n < c then begin
         acc := 0.;
         raise Exit
       end;
       let b =
         match c with
         | 1 -> float_of_int n
         | 2 -> float_of_int n *. float_of_int (n - 1) /. 2.
         | 3 ->
             float_of_int n *. float_of_int (n - 1) *. float_of_int (n - 2)
             /. 6.
         | _ ->
             let rec fall acc i =
               if i = c then acc else fall (acc *. float_of_int (n - i)) (i + 1)
             in
             let rec fact acc i =
               if i <= 1 then acc else fact (acc *. float_of_int i) (i - 1)
             in
             fall 1. 0 /. fact 1. c
       in
       acc := !acc *. b
     done
   with Exit -> ());
  !acc

let run_naive ?(seed = 1L) ?sample_dt ~t1 net =
  let sample_dt = match sample_dt with Some dt -> dt | None -> t1 /. 500. in
  let rng = Numeric.Rng.create seed in
  let reactions = Ssa.Compiled.compile Crn.Rates.default_env net in
  let counts =
    Array.map
      (fun x -> int_of_float (Float.round x))
      (Crn.Network.initial_state net)
  in
  let trace = Ode.Trace.create ~names:(Crn.Network.species_names net) in
  let snapshot () = Array.map float_of_int counts in
  let props = Array.make (Array.length reactions) 0. in
  let t = ref 0. in
  let next_sample = ref 0. in
  let n_events = ref 0 in
  let record_due_samples () =
    while !next_sample <= !t && !next_sample <= t1 +. 1e-12 do
      Ode.Trace.record trace !next_sample (snapshot ());
      next_sample := !next_sample +. sample_dt
    done
  in
  record_due_samples ();
  (try
     while !t < t1 do
       Array.iteri (fun i r -> props.(i) <- naive_propensity r counts) reactions;
       let total = Array.fold_left ( +. ) 0. props in
       if total <= 0. then raise Exit;
       let dt = Numeric.Rng.exponential rng total in
       t := !t +. dt;
       if !t > t1 then raise Exit;
       record_due_samples ();
       let j = Numeric.Rng.pick_weighted rng props in
       Ssa.Compiled.apply reactions.(j) counts 1;
       incr n_events
     done
   with Exit -> ());
  !n_events

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

type engine_row = {
  network : string;
  t1 : float;
  base_events : int;
  base_wall : float;
  incr_events : int;
  incr_wall : float;
  n_reactions : int;
  mean_deps : float;
  max_deps : int;
}

let bench_network ~name ~t1 build =
  let net = build () in
  let reactions = Ssa.Compiled.compile Crn.Rates.default_env net in
  let deps =
    Ssa.Dep_graph.build reactions ~n_species:(Crn.Network.n_species net)
  in
  (* warm both engines on a short horizon, then time one full run each *)
  ignore (run_naive ~t1:(t1 /. 20.) net);
  ignore (Ssa.Gillespie.run ~t1:(t1 /. 20.) net);
  let base_events, base_wall = time (fun () -> run_naive ~t1 net) in
  let incr_events, incr_wall =
    time (fun () -> (Ssa.Gillespie.run ~t1 net).Ssa.Gillespie.n_events)
  in
  let row =
    {
      network = name;
      t1;
      base_events;
      base_wall;
      incr_events;
      incr_wall;
      n_reactions = Array.length reactions;
      mean_deps = Ssa.Dep_graph.mean_out_degree deps;
      max_deps = Ssa.Dep_graph.max_out_degree deps;
    }
  in
  let eps events wall = float_of_int events /. wall in
  Printf.printf
    "%-10s R=%-4d deps(mean/max)=%.1f/%d   baseline %8.0f ev/s   incremental \
     %8.0f ev/s   speedup %.2fx\n%!"
    name row.n_reactions row.mean_deps row.max_deps
    (eps base_events base_wall)
    (eps incr_events incr_wall)
    (eps incr_events incr_wall /. eps base_events base_wall);
  row

(* One scaling-matrix row: the same ensemble at one requested job count.
   Requests are clamped to the hardware (the Domain_pool default), so an
   oversubscribed request documents that clamping makes it harmless —
   its wall time should match the effective job count's, not degrade.
   [efficiency] is scaling / jobs_effective: 1.0 is perfect, and on a
   1-core host every row is trivially ~1.0 because everything runs
   serial. *)
type ensemble_row = {
  e_network : string;
  e_t1 : float;
  runs : int;
  cores : int;
  jobs_requested : int;
  jobs_effective : int;
  chunk : int;
  wall_1 : float;
  wall_j : float;
  scaling : float;
  efficiency : float;
  oversubscribed : bool;
  identical : bool;
}

let bench_ensemble ~name ~t1 ~runs build =
  let net = build () in
  (* compile-once / per-worker-arena fan-out — the configuration the
     CLI, the service and mean_final all use now *)
  let model = Ssa.Gillespie.compile_model Crn.Rates.default_env net in
  let go ~jobs ~chunk =
    time (fun () ->
        Ssa.Ensemble.map_with ~jobs ~chunk ~seed:42L
          ~init_worker:(fun () -> Ssa.Gillespie.make_arena model)
          ~runs
          (fun arena _ s ->
            (Ssa.Gillespie.run ~seed:s ~arena ~t1 net).Ssa.Gillespie.final))
  in
  let cores = Ssa.Ensemble.default_jobs () in
  ignore (go ~jobs:1 ~chunk:runs) (* warm-up *);
  let f1, wall_1 = go ~jobs:1 ~chunk:runs in
  let requests =
    List.sort_uniq compare [ 1; 2; cores; 2 * cores ]
  in
  List.map
    (fun jobs_requested ->
      let jobs_effective = min jobs_requested cores in
      let chunk = max 1 (runs / (4 * max 1 jobs_effective)) in
      let fj, wall_j = go ~jobs:jobs_requested ~chunk in
      let identical = f1 = fj in
      let scaling = wall_1 /. wall_j in
      let efficiency = scaling /. float_of_int (max 1 jobs_effective) in
      Printf.printf
        "ensemble %-10s %d runs: jobs=%d (eff %d/%d cores, chunk %d) %.2fs   \
         scaling %.2fx   efficiency %.2f   identical=%b\n%!"
        name runs jobs_requested jobs_effective cores chunk wall_j scaling
        efficiency identical;
      {
        e_network = name;
        e_t1 = t1;
        runs;
        cores;
        jobs_requested;
        jobs_effective;
        chunk;
        wall_1;
        wall_j;
        scaling;
        efficiency;
        oversubscribed = jobs_requested > cores;
        identical;
      })
    requests

(* ------------------------------------------------------------- JSON *)

let json_engine_row b r =
  Buffer.add_string b
    (Printf.sprintf
       "    {\"network\": %S, \"t1\": %g, \"n_reactions\": %d,\n\
       \     \"deps_mean\": %.3f, \"deps_max\": %d,\n\
       \     \"baseline\": {\"events\": %d, \"wall_s\": %.4f, \
        \"events_per_sec\": %.1f},\n\
       \     \"incremental\": {\"events\": %d, \"wall_s\": %.4f, \
        \"events_per_sec\": %.1f},\n\
       \     \"speedup\": %.3f}"
       r.network r.t1 r.n_reactions r.mean_deps r.max_deps r.base_events
       r.base_wall
       (float_of_int r.base_events /. r.base_wall)
       r.incr_events r.incr_wall
       (float_of_int r.incr_events /. r.incr_wall)
       (float_of_int r.incr_events /. r.incr_wall
       /. (float_of_int r.base_events /. r.base_wall)))

let json_ensemble_row b r =
  Buffer.add_string b
    (Printf.sprintf
       "    {\"network\": %S, \"t1\": %g, \"runs\": %d, \"cores\": %d,\n\
       \     \"jobs_requested\": %d, \"jobs_effective\": %d, \"chunk\": %d,\n\
       \     \"jobs_1_wall_s\": %.4f, \"wall_s\": %.4f, \"scaling\": %.3f,\n\
       \     \"efficiency\": %.3f, \"oversubscribed\": %b, \
        \"identical\": %b}"
       r.e_network r.e_t1 r.runs r.cores r.jobs_requested r.jobs_effective
       r.chunk r.wall_1 r.wall_j r.scaling r.efficiency r.oversubscribed
       r.identical)

let write_json ~path engine_rows ensemble_rows =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"schema\": \"mrsc-bench-ssa/2\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"recommended_domains\": %d,\n  \"host\": %s,\n"
       (Ssa.Ensemble.default_jobs ())
       (Bench_host.json ()));
  Buffer.add_string b "  \"engine\": {\"networks\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      json_engine_row b r)
    engine_rows;
  Buffer.add_string b "\n  ]},\n  \"ensemble\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      json_ensemble_row b r)
    ensemble_rows;
  Buffer.add_string b "\n  ]\n}\n";
  let oc = open_out path in
  Buffer.output_buffer oc b;
  close_out oc;
  Printf.printf "wrote %s\n%!" path

(* minimal CLI: [quick]/[--quick] shrinks workloads for CI smoke;
   [--out PATH] overrides the JSON destination (CI passes it explicitly
   so artifacts land where the workflow expects them) *)
let parse_args () =
  let quick =
    Array.exists (fun a -> a = "quick" || a = "--quick") Sys.argv
  in
  let out = ref "BENCH_ssa.json" in
  Array.iteri
    (fun i a ->
      if a = "--out" then
        if i + 1 < Array.length Sys.argv then out := Sys.argv.(i + 1)
        else begin
          prerr_endline "bench_ssa: --out needs a path";
          exit 2
        end)
    Sys.argv;
  (quick, !out)

let () =
  let quick, out = parse_args () in
  let s = if quick then 0.25 else 1. in
  let engine_rows =
    [
      bench_network ~name:"decay" ~t1:(40. *. s) (fun () ->
          let net = Crn.Network.create () in
          let a = Crn.Network.species net "A"
          and bsp = Crn.Network.species net "B" in
          Crn.Network.set_init net a 200000.;
          Crn.Network.add_reaction net
            (Crn.Reaction.make ~reactants:[ (a, 1) ] ~products:[ (bsp, 1) ]
               (Crn.Rates.slow_scaled 0.1));
          net);
      bench_network ~name:"clock4" ~t1:(40. *. s) (fun () ->
          Designs.Catalog.build "clock4");
      bench_network ~name:"counter2" ~t1:(60. *. s) (fun () ->
          Designs.Catalog.build "counter2");
      bench_network ~name:"counter3" ~t1:(40. *. s) (fun () ->
          Designs.Catalog.build "counter3");
    ]
  in
  let ensemble_rows =
    bench_ensemble ~name:"counter2" ~t1:(30. *. s)
      ~runs:(if quick then 4 else 8)
      (fun () -> Designs.Catalog.build "counter2")
  in
  write_json ~path:out engine_rows ensemble_rows;
  let bad = List.filter (fun r -> not r.identical) ensemble_rows in
  if bad <> [] then begin
    prerr_endline "FAIL: parallel ensemble not identical to sequential";
    exit 1
  end
