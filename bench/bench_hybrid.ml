(* Hybrid engine benchmark: wall-clock speedup over pure SSA and accuracy
   against the SSA ensemble mean, across the clocked design catalog at
   copy numbers from 1e2 to 1e6.

   Emits machine-readable BENCH_hybrid.json in the current directory so
   the perf trajectory is tracked PR over PR:

     dune exec bench/bench_hybrid.exe                     # full suite
     dune exec bench/bench_hybrid.exe -- --smoke          # CI smoke
     dune exec bench/bench_hybrid.exe -- --out path.json  # explicit output

   JSON schema (mrsc-bench-hybrid/1):
     rows[]: one per design x copy number — single-run wall time for
       pure SSA (when affordable) and hybrid at the same seed, their
       ratio ("speedup"), the hybrid work counters, and an accuracy
       block comparing ensemble-averaged time-averaged species values
       between the engines (see below); rows at 1e5/1e6 copies are
       hybrid-only (the SSA baseline would take minutes to hours) and
       carry null for the SSA columns;
     determinism: hybrid ensemble finals across several jobs x chunk
       combinations, which must be byte-identical to the sequential
       fan-out;
     accuracy_tolerance: the gate every benchmarked design must pass.

   Accuracy metric. Clock-phase species at a fixed horizon are bimodal
   (a run is caught in whatever phase its stochastic clock reached), so
   comparing ensemble means of the *final* state needs thousands of
   trajectories to beat phase-diffusion noise. Time-averaging each
   trajectory over the whole run first integrates over ~10+ clock cycles
   and kills that variance: the benchmark compares, per species, the
   ensemble average of the trace's time average, normalized by the
   design's clock mass (its dominant copy number). The worst species'
   relative error must stay below the tolerance for every row that has
   an SSA baseline; the residual at the default run counts is a few
   percent of stochastic-sampling noise, so the gate is set at 0.10. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* ------------------------------------------------------ scaled designs *)

(* Every clocked design family takes its copy numbers from the
   Sync_design masses (clock_mass also sets the oscillator amplitude),
   so "copy number" below means clock_mass; signal species carry
   clock_mass / 10 as in the default catalog builds. *)

let clock4 mass () =
  let net = Crn.Network.create () in
  let b = Crn.Builder.on net in
  let (_ : Molclock.Oscillator.t) =
    Molclock.Oscillator.create ~n_phases:4 ~mass (Crn.Builder.scoped b "clk")
  in
  net

let with_design ~mass f () =
  let net = Crn.Network.create () in
  let d =
    Core.Sync_design.make ~clock_mass:mass ~signal_mass:(mass /. 10.) net
  in
  f d;
  net

let counter bits ~mass =
  with_design ~mass (fun d ->
      ignore (Core.Counter.free_running d ~bits : Core.Counter.t))

let gated_counter bits ~mass =
  with_design ~mass (fun d ->
      ignore (Core.Counter.gated d ~bits : Core.Counter.t))

let lfsr3 ~mass =
  with_design ~mass (fun d ->
      ignore (Core.Lfsr.make d ~bits:3 ~taps:[ 1; 2 ] ~seed:1 : Core.Lfsr.t))

let ma2 ~mass =
  with_design ~mass (fun d ->
      ignore (Core.Filter.moving_average d ~taps:2 : Core.Filter.t))

let designs =
  [
    ("clock4", fun mass -> clock4 mass);
    ("counter2", fun mass -> counter 2 ~mass);
    ("counter3", fun mass -> counter 3 ~mass);
    ("gated-counter2", fun mass -> gated_counter 2 ~mass);
    ("lfsr3", fun mass -> lfsr3 ~mass);
    ("ma2", fun mass -> ma2 ~mass);
  ]

(* Threshold rule per copy number: below 1000 copies the defaults keep
   the run fully discrete (bitwise Gillespie — no speedup claimed, no
   error possible); from 1000 copies up, a tenth of the clock mass
   (clamped to [100, 1000]) lets the clock equilibria promote. *)
let thresholds copy =
  if copy >= 1000. then begin
    let pop = Float.max 100. (Float.min 1000. (copy /. 10.)) in
    (pop, 2. *. pop)
  end
  else (1000., 1000.)

let max_events = 2_000_000_000

(* ------------------------------------------------------------ accuracy *)

(* per-species time average of one trajectory's trace *)
let trace_time_avg trace =
  let len = Ode.Trace.length trace in
  let n = Array.length (Ode.Trace.names trace) in
  Array.init n (fun sp ->
      let col = Ode.Trace.column trace sp in
      Array.fold_left ( +. ) 0. col /. float_of_int len)

(* ensemble average of per-trajectory time averages, fanned over the
   shared domain pool with split seed streams *)
let ensemble_time_avg ~runs ~seed runner =
  let avgs = Ssa.Ensemble.map ~seed ~runs (fun _ s -> runner s) in
  let n = Array.length avgs.(0) in
  Array.init n (fun sp ->
      Array.fold_left (fun acc a -> acc +. a.(sp)) 0. avgs
      /. float_of_int runs)

type accuracy = {
  acc_runs : int;
  max_rel_err : float;
  worst_species : string;
  pass : bool;
}

let tolerance = 0.10

let measure_accuracy ~runs ~copy ~pop ~prop ~t1 net =
  let ssa_avg =
    ensemble_time_avg ~runs ~seed:7L (fun s ->
        trace_time_avg
          (Ssa.Gillespie.run ~seed:s ~max_events ~t1 net).Ssa.Gillespie.trace)
  in
  let hyb_avg =
    ensemble_time_avg ~runs ~seed:7L (fun s ->
        trace_time_avg
          (Hybrid.Engine.run ~seed:s ~max_events ~pop_threshold:pop
             ~prop_threshold:prop ~t1 net)
            .Hybrid.Engine.trace)
  in
  let names = Crn.Network.species_names net in
  let worst = ref 0. and arg = ref 0 in
  Array.iteri
    (fun i v ->
      let e = Float.abs (v -. hyb_avg.(i)) /. copy in
      if e > !worst then begin
        worst := e;
        arg := i
      end)
    ssa_avg;
  {
    acc_runs = runs;
    max_rel_err = !worst;
    worst_species = names.(!arg);
    pass = !worst <= tolerance;
  }

(* ---------------------------------------------------------------- rows *)

type row = {
  design : string;
  copy : float;
  t1 : float;
  pop : float;
  prop : float;
  ssa_wall : float option;  (** None on hybrid-only rows *)
  ssa_events : int option;
  hybrid_wall : float;
  speedup : float option;
  stats : Hybrid.Engine.stats;
  accuracy : accuracy option;
}

let bench_row ~design ~build ~copy ~t1 ~acc_runs ~with_ssa =
  let pop, prop = thresholds copy in
  Printf.eprintf "bench_hybrid: %s @ %.0f copies (t1=%g)...\n%!" design copy
    t1;
  let net = build copy () in
  let ssa =
    if with_ssa then begin
      let r, w =
        time (fun () -> Ssa.Gillespie.run ~seed:3L ~max_events ~t1 net)
      in
      Some (r.Ssa.Gillespie.n_events, w)
    end
    else None
  in
  let h, hybrid_wall =
    time (fun () ->
        Hybrid.Engine.run ~seed:3L ~max_events ~pop_threshold:pop
          ~prop_threshold:prop ~t1 net)
  in
  let accuracy =
    if with_ssa then
      Some (measure_accuracy ~runs:acc_runs ~copy ~pop ~prop ~t1 net)
    else None
  in
  {
    design;
    copy;
    t1;
    pop;
    prop;
    ssa_wall = Option.map snd ssa;
    ssa_events = Option.map fst ssa;
    hybrid_wall;
    speedup = Option.map (fun (_, w) -> w /. hybrid_wall) ssa;
    stats = h.Hybrid.Engine.stats;
    accuracy;
  }

(* ----------------------------------------------------------- determinism *)

(* hybrid ensemble finals must be byte-identical for every jobs x chunk
   combination (oversubscription forced so the combos exercise real
   parallelism even on a 2-core CI runner) *)
let check_determinism ~design ~build ~copy ~t1 ~runs =
  let pop, prop = thresholds copy in
  let net = build copy () in
  let model = Hybrid.Engine.compile_model Crn.Rates.default_env net in
  let finals ~jobs ~chunk =
    Ssa.Ensemble.map_with ~jobs ~chunk ~oversubscribe:true ~seed:11L
      ~init_worker:(fun () -> Hybrid.Engine.make_arena model)
      ~runs
      (fun arena _ s ->
        (Hybrid.Engine.run ~seed:s ~max_events ~pop_threshold:pop
           ~prop_threshold:prop ~arena ~t1 net)
          .Hybrid.Engine.final)
  in
  let reference = finals ~jobs:1 ~chunk:1 in
  let combos = [ (2, 1); (2, 3); (3, 2); (4, 8) ] in
  let identical =
    List.for_all
      (fun (jobs, chunk) -> finals ~jobs ~chunk = reference)
      combos
  in
  (design, combos, identical)

(* ------------------------------------------------------------- output *)

let json_stats b (s : Hybrid.Engine.stats) =
  Buffer.add_string b
    (Printf.sprintf
       "{\"ssa_events\": %d, \"tau_leaps\": %d, \"tau_events\": %d, \
        \"ode_steps\": %d, \"repartitions\": %d, \"mode_switches\": %d, \
        \"rejected\": %d, \"peak_n_fast\": %d}"
       s.Hybrid.Engine.n_ssa_events s.Hybrid.Engine.n_tau_leaps
       s.Hybrid.Engine.n_tau_events s.Hybrid.Engine.n_ode_steps
       s.Hybrid.Engine.n_repartitions s.Hybrid.Engine.n_mode_switches
       s.Hybrid.Engine.n_rejected s.Hybrid.Engine.peak_n_fast)

let json_row b r =
  Buffer.add_string b
    (Printf.sprintf
       "    {\"design\": %S, \"copy_number\": %.0f, \"t1\": %g, \
        \"pop_threshold\": %g, \"prop_threshold\": %g,\n     "
       r.design r.copy r.t1 r.pop r.prop);
  (match (r.ssa_wall, r.ssa_events, r.speedup) with
  | Some w, Some ev, Some sp ->
      Buffer.add_string b
        (Printf.sprintf
           "\"ssa_wall_s\": %.4f, \"ssa_events\": %d, \"speedup\": %.2f, " w
           ev sp)
  | _ ->
      Buffer.add_string b
        "\"ssa_wall_s\": null, \"ssa_events\": null, \"speedup\": null, ");
  Buffer.add_string b
    (Printf.sprintf "\"hybrid_wall_s\": %.4f,\n     \"hybrid\": "
       r.hybrid_wall);
  json_stats b r.stats;
  (match r.accuracy with
  | Some a ->
      Buffer.add_string b
        (Printf.sprintf
           ",\n     \"accuracy\": {\"runs\": %d, \"max_rel_err\": %.5f, \
            \"worst_species\": %S, \"pass\": %b}"
           a.acc_runs a.max_rel_err a.worst_species a.pass)
  | None -> Buffer.add_string b ",\n     \"accuracy\": null");
  Buffer.add_string b "}"

let write_json ~path ~smoke rows (det_design, det_combos, det_identical) =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"schema\": \"mrsc-bench-hybrid/1\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"host\": %s,\n  \"smoke\": %b,\n" (Bench_host.json ())
       smoke);
  Buffer.add_string b
    (Printf.sprintf "  \"accuracy_tolerance\": %g,\n  \"rows\": [\n"
       tolerance);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      json_row b r)
    rows;
  Buffer.add_string b
    (Printf.sprintf
       "\n  ],\n  \"determinism\": {\"design\": %S, \"combos\": [%s], \
        \"identical\": %b}\n}\n"
       det_design
       (String.concat ", "
          (List.map
             (fun (j, c) -> Printf.sprintf "[%d, %d]" j c)
             det_combos))
       det_identical);
  let oc = open_out path in
  Buffer.output_buffer oc b;
  close_out oc

(* ------------------------------------------------------------------ main *)

let parse_args () =
  let smoke =
    Array.exists (fun a -> a = "smoke" || a = "--smoke") Sys.argv
  in
  let out = ref "BENCH_hybrid.json" in
  Array.iteri
    (fun i a ->
      if a = "--out" then
        if i + 1 < Array.length Sys.argv then out := Sys.argv.(i + 1)
        else begin
          prerr_endline "bench_hybrid: --out needs a path";
          exit 2
        end)
    Sys.argv;
  (smoke, !out)

let () =
  let smoke, out = parse_args () in
  let rows =
    if smoke then
      (* one clocked design at 1e3 copies: fast enough for CI, large
         enough that the hybrid partition actually engages *)
      [
        bench_row ~design:"clock4"
          ~build:(List.assoc "clock4" designs)
          ~copy:1000. ~t1:6. ~acc_runs:8 ~with_ssa:true;
      ]
    else
      let baseline =
        List.concat_map
          (fun (design, build) ->
            List.map
              (fun (copy, t1, acc_runs) ->
                bench_row ~design ~build ~copy ~t1 ~acc_runs ~with_ssa:true)
              [
                (100., 6., 8);
                (1000., 6., 8);
                (10_000., 2., 4);
              ])
          designs
      in
      let hybrid_only =
        List.map
          (fun copy ->
            bench_row ~design:"clock4"
              ~build:(List.assoc "clock4" designs)
              ~copy ~t1:2. ~acc_runs:0 ~with_ssa:false)
          [ 100_000.; 1_000_000. ]
      in
      baseline @ hybrid_only
  in
  let det =
    check_determinism ~design:"counter2"
      ~build:(List.assoc "counter2" designs)
      ~copy:1000. ~t1:4.
      ~runs:(if smoke then 6 else 12)
  in
  write_json ~path:out ~smoke rows det;
  Printf.eprintf "bench_hybrid: wrote %s\n%!" out;
  List.iter
    (fun r ->
      Printf.eprintf "  %-14s @ %-7.0f %s hybrid %.3fs%s\n" r.design r.copy
        (match (r.ssa_wall, r.speedup) with
        | Some w, Some sp -> Printf.sprintf "ssa %.3fs" w ^ Printf.sprintf " speedup %.1fx" sp
        | _ -> "ssa n/a")
        r.hybrid_wall
        (match r.accuracy with
        | Some a ->
            Printf.sprintf " err %.4f (%s) %s" a.max_rel_err a.worst_species
              (if a.pass then "ok" else "FAIL")
        | None -> ""))
    rows;
  let _, _, det_ok = det in
  if not det_ok then begin
    prerr_endline "FAIL: hybrid ensemble not identical across jobs x chunk";
    exit 1
  end;
  let bad =
    List.filter
      (fun r -> match r.accuracy with Some a -> not a.pass | None -> false)
      rows
  in
  if bad <> [] then begin
    List.iter
      (fun r ->
        Printf.eprintf "FAIL: accuracy gate: %s @ %.0f copies\n" r.design
          r.copy)
      bad;
    exit 1
  end
