(* Benchmark harness: regenerates every figure and table of the evaluation
   (see DESIGN.md section 4 and EXPERIMENTS.md for the mapping), then runs
   Bechamel timing benchmarks of the simulators and synthesizer.

   Run everything:        dune exec bench/main.exe
   Run one experiment:    dune exec bench/main.exe -- fig1 tab2
   Skip the perf benches: dune exec bench/main.exe -- figs tabs *)

let section title =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 78 '=') title (String.make 78 '=')

(* print a table, and also write it as CSV when MRSC_BENCH_CSV names a
   directory (created on demand) *)
let emit_table ~name tab =
  print_string (Analysis.Table.render tab);
  match Sys.getenv_opt "MRSC_BENCH_CSV" with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = Filename.concat dir (name ^ ".csv") in
      Analysis.Csv.write_rows ~path
        ~header:(Analysis.Table.headers tab)
        (Analysis.Table.rows tab);
      Printf.printf "(table also written to %s)\n" path

(* ------------------------------------------------------------------ FIG-1 *)
(* The molecular clock: sustained oscillation of the phase concentrations,
   measured period/jitter, and phase non-overlap. *)

let fig1_clock () =
  section "FIG-1  molecular clock: sustained oscillation (RGB phases)";
  (* the paper's three-phase clock *)
  let net3 = Crn.Network.create () in
  let clk3 =
    Molclock.Clock_chassis.of_oscillator @@ Molclock.Oscillator.create ~n_phases:3 (Crn.Builder.on net3 |> fun b -> Crn.Builder.scoped b "clk")
  in
  let tr3 = Ode.Driver.simulate ~method_:Ode.Driver.Rosenbrock ~thin:5 ~t1:60. net3 in
  print_string
    (Analysis.Ascii_plot.render ~width:72 ~height:14
       ~title:"three-phase clock, k_fast/k_slow = 1000"
       (Analysis.Ascii_plot.of_trace tr3 (Molclock.Clock_chassis.phase_names clk3)));
  let report name trace clk =
    let period = Molclock.Clock_analysis.period trace clk in
    let times = Ode.Trace.times trace in
    let values = Ode.Trace.column_named trace "clk.P0" in
    let jitter =
      Analysis.Oscillation.period_jitter
        ~threshold:(Molclock.Clock_chassis.high_threshold clk) ~times ~values ()
    in
    Printf.printf
      "%s: sustained=%b  period=%s  jitter=%s  amplitude=%.1f/%.0f\n" name
      (Molclock.Clock_analysis.is_sustained trace clk)
      (match period with Some p -> Printf.sprintf "%.3f" p | None -> "-")
      (match jitter with Some j -> Printf.sprintf "%.4f" j | None -> "-")
      (Analysis.Oscillation.amplitude ~values)
      (Molclock.Clock_chassis.mass clk)
  in
  report "3-phase" tr3 clk3;
  (* the four-phase clock used by the sequential designs, with its
     non-overlap guarantee *)
  let net4 = Crn.Network.create () in
  let clk4 =
    Molclock.Clock_chassis.of_oscillator @@ Molclock.Oscillator.create ~n_phases:4 (Crn.Builder.on net4 |> fun b -> Crn.Builder.scoped b "clk")
  in
  let tr4 = Ode.Driver.simulate ~method_:Ode.Driver.Rosenbrock ~thin:5 ~t1:60. net4 in
  report "4-phase" tr4 clk4;
  Printf.printf
    "4-phase non-overlap: max min(P0,P2)/mass = %.6f, max min(P1,P3)/mass = %.6f\n"
    (Molclock.Clock_analysis.overlap tr4 clk4 0 2)
    (Molclock.Clock_analysis.overlap tr4 clk4 1 3);
  (* ablation: without the positive-feedback reactions the clock dies *)
  let net_nf = Crn.Network.create () in
  let clk_nf =
    Molclock.Clock_chassis.of_oscillator @@ Molclock.Oscillator.create ~feedback:false ~n_phases:3
      (Crn.Builder.on net_nf |> fun b -> Crn.Builder.scoped b "clk")
  in
  let tr_nf = Ode.Driver.simulate ~method_:Ode.Driver.Rosenbrock ~thin:5 ~t1:60. net_nf in
  Printf.printf "ablation (no positive feedback): sustained=%b\n"
    (Molclock.Clock_analysis.is_sustained tr_nf clk_nf)

(* ------------------------------------------------------------------ FIG-2 *)
(* The two-delay-element chain of the companion abstract's Figure 1(c). *)

let fig2_chain () =
  section "FIG-2  asynchronous two-delay-element chain (X -> ... -> Y)";
  let input = 80. in
  let trace, chain = Async_mol.Delay_chain.simulate ~input ~t1:50. ~n:2 () in
  print_string
    (Analysis.Ascii_plot.render ~width:72 ~height:14
       ~title:"signal ripples X=B0 -> R1 -> G1 -> B1 -> R2 -> G2 -> Y=R3"
       (Analysis.Ascii_plot.of_trace trace [ "B0"; "G1"; "B1"; "G2"; "R3" ]));
  let y = Async_mol.Delay_chain.output_total chain trace (Ode.Trace.last_time trace) in
  Printf.printf "delivered: %.2f / %.0f (%.2f%%)\n" y input (100. *. y /. input);
  (match Async_mol.Delay_chain.completion_time ~frac:0.95 chain trace with
  | Some t -> Printf.printf "95%% completion at t = %.2f\n" t
  | None -> print_endline "did not complete");
  Printf.printf "chain signal mass is a conservation law: %b\n"
    (Async_mol.Delay_chain.is_conservative chain)

(* ------------------------------------------------------------------ FIG-3 *)
(* The synchronous binary counter. *)

let fig3_counter () =
  section "FIG-3  3-bit synchronous binary counter";
  let net = Crn.Network.create () in
  let d = Core.Sync_design.make net in
  let ctr = Core.Counter.free_running d ~bits:3 in
  let cycles = 10 in
  let trace = Core.Sync_design.simulate ~cycles:(cycles + 1) d in
  print_string
    (Analysis.Ascii_plot.render ~width:72 ~height:10
       ~title:"binary-weighted output waveforms"
       (Analysis.Ascii_plot.of_trace trace (Core.Counter.bit_names ctr)));
  let tab = Analysis.Table.create [ "cycle"; "decoded state"; "bit outputs"; "correct" ] in
  let correct = ref 0 in
  for c = 0 to cycles - 1 do
    let expect = (c + 1) mod 8 in
    let state = Core.Counter.value_at ctr trace ~cycle:c in
    let bits = Core.Counter.bits_at ctr trace ~cycle:c in
    if state = Some expect && bits = expect then incr correct;
    Analysis.Table.add_rowf tab "%d|%s|%d|%s" c
      (match state with Some v -> string_of_int v | None -> "?")
      bits
      (if state = Some expect && bits = expect then "yes" else "NO")
  done;
  emit_table ~name:"fig3_counter" tab;
  Printf.printf "correct cycles: %d / %d\n" !correct cycles;
  (* the gated variant counts presented events *)
  let net2 = Crn.Network.create () in
  let d2 = Core.Sync_design.make net2 in
  let g = Core.Counter.gated d2 ~bits:2 in
  let word = [ 1; 0; 1; 1; 0; 1 ] in
  let _, states = Core.Fsm.run g.Core.Counter.fsm ~symbols:word in
  Printf.printf "gated counter on input word %s: states %s (expected 1 1 2 3 3 0)\n"
    (String.concat "" (List.map string_of_int word))
    (String.concat " "
       (List.map (function Some v -> string_of_int v | None -> "?") states))

(* ------------------------------------------------------------------ FIG-4 *)
(* The moving-average filter (and IIR smoother) response. *)

let fig4_filter () =
  section "FIG-4  DSP with molecular reactions: moving-average filter";
  let net = Crn.Network.create () in
  let d = Core.Sync_design.make net in
  let f = Core.Filter.moving_average d ~taps:2 in
  let samples = [ 8.; 7.; 9.; 8.; 1.; 0.; 2.; 1.; 8.; 9. ] in
  let got = Core.Filter.response f samples in
  let ideal = Core.Filter.reference_moving_average ~taps:2 samples in
  let tab = Analysis.Table.create [ "n"; "x[n]"; "y[n] measured"; "y[n] ideal"; "abs err" ] in
  List.iteri
    (fun n x ->
      let g = List.nth got n and w = List.nth ideal n in
      Analysis.Table.add_rowf tab "%d|%.1f|%.3f|%.3f|%.3f" n x g w
        (Float.abs (g -. w)))
    samples;
  emit_table ~name:"fig4_filter" tab;
  let worst =
    List.fold_left2 (fun a g w -> Float.max a (Float.abs (g -. w))) 0. got ideal
  in
  Printf.printf "worst error: %.3f of full scale 9 (%.1f%%)\n" worst
    (100. *. worst /. 9.);
  (* IIR smoother step response *)
  let net2 = Crn.Network.create () in
  let d2 = Core.Sync_design.make net2 in
  let iir = Core.Filter.iir_smoother d2 in
  let step = [ 8.; 8.; 8.; 8.; 0.; 0.; 0. ] in
  let got2 = Core.Filter.response iir step in
  let ideal2 = Core.Filter.reference_iir step in
  Printf.printf "\nIIR smoother y(n) = (x(n)+y(n-1))/2, step input:\n";
  Printf.printf "measured: %s\n"
    (String.concat " " (List.map (Printf.sprintf "%.2f") got2));
  Printf.printf "ideal:    %s\n"
    (String.concat " " (List.map (Printf.sprintf "%.2f") ideal2))

(* ------------------------------------------------------------------ FIG-5 *)
(* The signal-flow-graph compiler on the flagship DSP design: a biquad. *)

let fig5_biquad () =
  section "FIG-5  SFG compiler: second-order (biquad) IIR filter";
  let net = Crn.Network.create () in
  let d = Core.Sync_design.make net in
  let g =
    Core.Sfg.biquad d ~b0:(1, 2) ~b1:(1, 4) ~b2:(1, 8) ~a1:(1, 4) ~a2:(1, 8)
  in
  let c = Core.Sfg.compile g in
  Printf.printf
    "y(n) = x(n)/2 + x(n-1)/4 + x(n-2)/8 + y(n-1)/4 + y(n-2)/8
";
  Printf.printf "compiled to %d species / %d reactions

"
    (Crn.Network.n_species net)
    (Crn.Network.n_reactions net);
  let stream = [ 8.; 8.; 8.; 8.; 0.; 0.; 0.; 0.; 4.; 4. ] in
  let got = List.hd (Core.Sfg.response c [ stream ]) in
  let want = List.hd (Core.Sfg.reference g [ stream ]) in
  let tab =
    Analysis.Table.create [ "n"; "x[n]"; "y[n] chemistry"; "y[n] golden"; "abs err" ]
  in
  List.iteri
    (fun n x ->
      let gv = List.nth got n and wv = List.nth want n in
      Analysis.Table.add_rowf tab "%d|%.1f|%.3f|%.3f|%.3f" n x gv wv
        (Float.abs (gv -. wv)))
    stream;
  emit_table ~name:"fig5_biquad" tab;
  let worst =
    List.fold_left2 (fun a gv wv -> Float.max a (Float.abs (gv -. wv))) 0. got want
  in
  Printf.printf "worst error: %.3f (peak response ~10)
" worst

(* ------------------------------------------------------------------ FIG-6 *)
(* Frequency response of the compiled biquad vs the closed-form |H|. *)

let fig6_bode () =
  section "FIG-6  frequency response of the molecular biquad";
  let net = Crn.Network.create () in
  let d = Core.Sync_design.make net in
  let b0 = (1, 2) and b1 = (1, 4) and b2 = (1, 8) and a1 = (1, 4) and a2 = (1, 8) in
  let g = Core.Sfg.biquad d ~b0 ~b1 ~b2 ~a1 ~a2 in
  let c = Core.Sfg.compile g in
  let omegas =
    [ Float.pi /. 8.; Float.pi /. 4.; Float.pi /. 2.; 3. *. Float.pi /. 4. ]
  in
  let tab =
    Analysis.Table.create
      [ "omega/pi"; "|H| chemistry"; "|H| golden model"; "|H| closed form" ]
  in
  List.iter
    (fun omega ->
      (* 28 cycles = 12 discarded as transient + one full period of even
         the lowest swept frequency (pi/8 -> 16 samples/period) *)
      let p = Core.Freq_response.measure ~cycles:28 c ~omega in
      let theory = Core.Freq_response.biquad_theory ~b0 ~b1 ~b2 ~a1 ~a2 ~omega in
      Analysis.Table.add_rowf tab "%.3f|%.3f|%.3f|%.3f" (omega /. Float.pi)
        p.Core.Freq_response.measured p.Core.Freq_response.ideal theory)
    omegas;
  emit_table ~name:"fig6_bode" tab;
  print_endline
    "expected shape: a low-pass response — the chemistry's gain follows the
     closed-form transfer function across the band within the clock-trickle
     error floor (~1-2%)."

(* ------------------------------------------------------------------ TAB-1 *)
(* Rate independence: accuracy as a function of the fast/slow separation. *)

let tab1_rate_sweep () =
  section
    "TAB-1  rate independence: accuracy vs k_fast/k_slow (k_slow = 1)";
  let ratios = [ 10.; 100.; 1000.; 10000. ] in
  let tab =
    Analysis.Table.create
      [ "k_fast/k_slow"; "chain rel err"; "counter ok/8"; "filter worst err"; "clock period" ]
  in
  List.iter
    (fun ratio ->
      let env = Crn.Rates.env_with_ratio ratio in
      (* async chain transfer accuracy *)
      let chain_err =
        let trace, chain =
          Async_mol.Delay_chain.simulate ~env ~input:60. ~t1:100. ~n:2 ()
        in
        let y =
          Async_mol.Delay_chain.output_total chain trace (Ode.Trace.last_time trace)
        in
        Analysis.Accuracy.relative_error ~expected:60. y
      in
      (* clocked designs need the clock to oscillate at all; below a
         minimum separation (~50x, see the mini-sweep below) it dies and
         the cells read "no clock" *)
      let counter_cells =
        match
          let net = Crn.Network.create () in
          let d = Core.Sync_design.make net in
          let ctr = Core.Counter.free_running d ~bits:2 in
          let trace = Core.Sync_design.simulate ~env ~cycles:9 d in
          let ok = ref 0 in
          for c = 0 to 7 do
            if
              Core.Counter.value_at ~env ctr trace ~cycle:c
              = Some ((c + 1) mod 4)
            then incr ok
          done;
          (!ok, Core.Sync_design.period ~env d)
        with
        | ok, period -> [ string_of_int ok; Printf.sprintf "%.3f" period ]
        | exception Failure _ -> [ "no clock"; "no clock" ]
      in
      let filter_cell =
        match
          let net = Crn.Network.create () in
          let d = Core.Sync_design.make net in
          let f = Core.Filter.moving_average d ~taps:2 in
          let samples = [ 8.; 4.; 8.; 0. ] in
          let got = Core.Filter.response ~env f samples in
          let ideal = Core.Filter.reference_moving_average ~taps:2 samples in
          List.fold_left2
            (fun a g w -> Float.max a (Float.abs (g -. w)))
            0. got ideal
        with
        | worst -> Printf.sprintf "%.3f" worst
        | exception Failure _ -> "no clock"
      in
      Analysis.Table.add_row tab
        ([ Printf.sprintf "%g" ratio; Printf.sprintf "%.4f" chain_err ]
        @ [ List.nth counter_cells 0; filter_cell; List.nth counter_cells 1 ]))
    ratios;
  emit_table ~name:"tab1_rate_sweep" tab;
  (* the minimum separation for a live clock *)
  let threshold_tab = Analysis.Table.create [ "k_fast/k_slow"; "clock sustained" ] in
  List.iter
    (fun ratio ->
      let net = Crn.Network.create () in
      let b = Crn.Builder.on net in
      let clk =
        Molclock.Clock_chassis.of_oscillator @@ Molclock.Oscillator.create ~n_phases:4 (Crn.Builder.scoped b "clk")
      in
      let env = Crn.Rates.env_with_ratio ratio in
      let tr =
        Ode.Driver.simulate ~method_:Ode.Driver.Rosenbrock ~env ~thin:5
          ~t1:200. net
      in
      Analysis.Table.add_rowf threshold_tab "%g|%b" ratio
        (Molclock.Clock_analysis.is_sustained tr clk))
    [ 10.; 30.; 50.; 100. ];
  print_newline ();
  emit_table ~name:"tab1_clock_threshold" threshold_tab;
  print_endline
    "expected shape: the self-timed chain is accurate at every separation\n\
     (it needs no clock); the clocked designs require a minimum separation\n\
     (~50x) for the clock to sustain, and above it errors shrink as the\n\
     separation grows while the period stays set by the slow category."

(* ------------------------------------------------------------------ TAB-2 *)
(* Synthesis cost of every design, abstract and DSD-compiled. *)

let tab2_cost () =
  section "TAB-2  synthesis cost (abstract reactions vs DSD compilation)";
  let tab =
    Analysis.Table.create
      [ "design"; "species"; "reactions"; "fast"; "slow"; "srcs"; "DSD species"; "DSD reactions"; "DSD complexes" ]
  in
  List.iter
    (fun entry ->
      let net = entry.Designs.Catalog.build () in
      let s = Core.Compile.stats_of ~name:entry.Designs.Catalog.name net in
      let dsd_cells =
        match Dsd.Translate.translate net with
        | t ->
            let c = t.Dsd.Translate.compiled in
            let inv = Dsd.Translate.inventory t in
            [
              string_of_int (Crn.Network.n_species c);
              string_of_int (Crn.Network.n_reactions c);
              string_of_int (List.length inv);
            ]
        | exception Dsd.Translate.Not_compilable _ -> [ "-"; "-"; "-" ]
      in
      Analysis.Table.add_row tab
        ([
           s.Core.Compile.design;
           string_of_int s.Core.Compile.species;
           string_of_int s.Core.Compile.reactions;
           string_of_int s.Core.Compile.fast_reactions;
           string_of_int s.Core.Compile.slow_reactions;
           string_of_int s.Core.Compile.zero_order_sources;
         ]
        @ dsd_cells))
    (Designs.Catalog.all ());
  emit_table ~name:"tab2_cost" tab;
  print_endline
    "expected shape: the DSD compilation multiplies reaction counts by ~2-4x\n\
     and species counts by ~3-5x (gates, intermediates, translators, wastes)."

(* ------------------------------------------------------------------ TAB-3 *)
(* DSD behavioural equivalence. *)

let tab3_dsd () =
  section "TAB-3  DSD compilation fidelity (formal vs compiled trajectories)";
  let tab =
    Analysis.Table.create
      [ "network"; "t1"; "c_max"; "max dev"; "final dev"; "fuel left" ]
  in
  let row name net ~species ~t1 ~c_max =
    let t = Dsd.Translate.translate ~c_max net in
    let r = Dsd.Verify.compare ?species ~t1 net t in
    Analysis.Table.add_rowf tab "%s|%g|%g|%.4f|%.4f|%.3f" name t1 c_max
      r.Dsd.Verify.max_abs_deviation r.Dsd.Verify.final_deviation
      r.Dsd.Verify.fuel_remaining
  in
  row "adder" (Designs.Catalog.build "adder") ~species:None ~t1:10. ~c_max:1e4;
  row "sub" (Designs.Catalog.build "sub") ~species:None ~t1:30. ~c_max:1e4;
  (* the self-timed chain: compare the output species; the feedback
     dimerization churns fuel, so fidelity needs a deep buffer *)
  let chain_net = Designs.Catalog.build "chain1" in
  row "chain1" chain_net ~species:(Some [ "R2" ]) ~t1:25. ~c_max:1e4;
  row "chain1" chain_net ~species:(Some [ "R2" ]) ~t1:25. ~c_max:1e5;
  emit_table ~name:"tab3_dsd" tab;
  print_endline
    "expected shape: simple combinational networks match to <1%; the\n\
     handshake chain matches in its end state but the compilation's\n\
     quasi-steady-state lag shifts the transfer in time (large pointwise\n\
     deviation mid-transition), and its equilibrium churn consumes fuel\n\
     (fidelity of long runs requires deeper buffers)."

(* ------------------------------------------------------------------ TAB-4 *)
(* Synchronous vs asynchronous transfer through n delay elements. *)

let tab4_sync_async () =
  section "TAB-4  synchronous vs asynchronous: n-stage transfer latency";
  let tab =
    Analysis.Table.create
      [ "stages"; "sync latency"; "sync (cycles)"; "async latency"; "async/sync" ]
  in
  List.iter
    (fun n ->
      (* synchronous shift chain: the value starts in stage 0 of an
         (n+1)-latch chain and crosses n latch boundaries = n clock
         cycles; latency is when the last stage first holds at least half
         of it (the capture trickle loses ~1% per stage, so a tight
         threshold would miss deep chains) *)
      let sync_latency, period =
        let net = Crn.Network.create () in
        let d = Core.Sync_design.make net in
        let latches = Core.Latch.chain ~init_first:50. d ~name:"sr" (n + 1) in
        let last = List.nth latches n in
        let trace = Core.Sync_design.simulate ~cycles:(n + 2) d in
        let times = Ode.Trace.times trace in
        let stored =
          Ode.Trace.column trace
            (Ode.Trace.species_index trace
               (Crn.Builder.name d.Core.Sync_design.builder last.Core.Latch.store))
        in
        let rec find i =
          if i >= Array.length times then Float.nan
          else if stored.(i) >= 25. then times.(i)
          else find (i + 1)
        in
        (find 0, Core.Sync_design.period d)
      in
      (* asynchronous chain completion *)
      let async_latency =
        let trace, chain =
          Async_mol.Delay_chain.simulate ~input:50. ~t1:220. ~n ()
        in
        match Async_mol.Delay_chain.completion_time ~frac:0.9 chain trace with
        | Some t -> t
        | None -> Float.nan
      in
      Analysis.Table.add_rowf tab "%d|%.2f|%.2f|%.2f|%.2f" n sync_latency
        (sync_latency /. period) async_latency (async_latency /. sync_latency))
    [ 2; 4; 8 ];
  emit_table ~name:"tab4_sync_async" tab;
  print_endline
    "expected shape: both scale linearly in the stage count; the\n\
     synchronous design pays a full (globally fixed) clock period per\n\
     stage while the self-timed chain moves on as soon as each handshake\n\
     completes."

(* ------------------------------------------------------------- Bechamel *)

let perf () =
  section "PERF  Bechamel micro-benchmarks";
  let open Bechamel in
  (* pre-built systems so setup cost is outside the timed region *)
  let counter_net =
    let net = Crn.Network.create () in
    let d = Core.Sync_design.make net in
    let (_ : Core.Counter.t) = Core.Counter.free_running d ~bits:3 in
    net
  in
  let sys = Ode.Deriv.compile Crn.Rates.default_env counter_net in
  let x0 = Crn.Network.initial_state counter_net in
  let dx = Array.make (Ode.Deriv.dim sys) 0. in
  let decay_net =
    let net = Crn.Network.create () in
    let a = Crn.Network.species net "A" and b = Crn.Network.species net "B" in
    Crn.Network.set_init net a 500.;
    Crn.Network.add_reaction net
      (Crn.Reaction.make ~reactants:[ (a, 1) ] ~products:[ (b, 1) ] Crn.Rates.slow);
    net
  in
  let seed = ref 0 in
  let tests =
    [
      Test.make ~name:"mass-action RHS (39 species)"
        (Staged.stage (fun () -> Ode.Deriv.f sys 0. x0 dx));
      Test.make ~name:"jacobian (39 species)"
        (Staged.stage (fun () -> ignore (Ode.Deriv.jacobian sys x0)));
      Test.make ~name:"rosenbrock step"
        (Staged.stage (fun () ->
             ignore
               (Ode.Rosenbrock.integrate ~h0:1e-4 ~t0:0. ~t1:1e-3
                  ~on_sample:(fun _ _ -> ())
                  sys x0)));
      Test.make ~name:"gillespie decay (500 events)"
        (Staged.stage (fun () ->
             incr seed;
             ignore
               (Ssa.Gillespie.run ~seed:(Int64.of_int !seed) ~t1:50. decay_net)));
      Test.make ~name:"synthesize counter3"
        (Staged.stage (fun () ->
             let net = Crn.Network.create () in
             let d = Core.Sync_design.make net in
             ignore (Core.Counter.free_running d ~bits:3)));
      Test.make ~name:"dsd-compile counter3"
        (Staged.stage (fun () ->
             ignore (Dsd.Translate.translate counter_net)));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let tab = Analysis.Table.create [ "benchmark"; "time per run" ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          let cell =
            match Analyze.OLS.estimates ols_result with
            | Some (est :: _) ->
                if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
                else if est > 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
                else Printf.sprintf "%.0f ns" est
            | _ -> "n/a"
          in
          Analysis.Table.add_row tab [ name; cell ])
        analyzed)
    tests;
  emit_table ~name:"perf" tab

(* ------------------------------------------------------------------ EXT-1 *)
(* Extension: the designs survive discrete molecular noise (Gillespie). *)

let ext1_stochastic () =
  section "EXT-1  stochastic validation: discrete molecules (Gillespie SSA)";
  (* the clock *)
  let net = Crn.Network.create () in
  let b = Crn.Builder.on net in
  let clk =
    Molclock.Clock_chassis.of_oscillator @@ Molclock.Oscillator.create ~n_phases:4 ~mass:100.
      (Crn.Builder.scoped b "clk")
  in
  let { Ssa.Gillespie.trace; n_events; _ } =
    Ssa.Gillespie.run ~seed:3L ~sample_dt:0.05 ~t1:80. net
  in
  print_string
    (Analysis.Ascii_plot.render ~width:72 ~height:12
       ~title:"stochastic 4-phase clock (single SSA path, mass 100)"
       (Analysis.Ascii_plot.of_trace trace [ "clk.P0"; "clk.P2" ]));
  Printf.printf "reaction events: %d
" n_events;
  Printf.printf "sustained: %b   P0/P2 overlap: %.4f
"
    (Molclock.Clock_analysis.is_sustained trace clk)
    (Molclock.Clock_analysis.overlap trace clk 0 2);
  (match Molclock.Clock_analysis.period trace clk with
  | Some p ->
      Printf.printf
        "stochastic period: %.2f (deterministic 6.33 — discrete indicator
         arrivals slow the gated bootstrap transfers)
"
        p
  | None -> print_endline "no period measured");
  (* the counter, decoded against its own measured cycle boundaries *)
  let net2 = Crn.Network.create () in
  let d2 = Core.Sync_design.make ~signal_mass:30. net2 in
  let ctr = Core.Counter.free_running d2 ~bits:2 in
  let runs = 5 in
  let ok = ref 0 in
  for seed = 1 to runs do
    let { Ssa.Gillespie.trace; _ } =
      Ssa.Gillespie.run ~seed:(Int64.of_int seed) ~sample_dt:0.05 ~t1:120.
        net2
    in
    let states = Core.Stochastic.counter_states trace ctr in
    if
      List.length states >= 5
      && Core.Stochastic.increments_by_one states ~modulo:4
    then incr ok
  done;
  Printf.printf
    "2-bit counter (signal mass 30): %d/%d SSA paths count perfectly for
     every measured cycle
"
    !ok runs

(* ------------------------------------------------------------------ EXT-2 *)
(* Extension: clock design space — period vs phase count and clock mass. *)

let ext2_clock_tuning () =
  section "EXT-2  clock design space: period vs phase count and mass";
  let measure ~n_phases ~mass =
    let net = Crn.Network.create () in
    let b = Crn.Builder.on net in
    let clk =
      Molclock.Clock_chassis.of_oscillator @@ Molclock.Oscillator.create ~n_phases ~mass (Crn.Builder.scoped b "clk")
    in
    let trace =
      Ode.Driver.simulate ~method_:Ode.Driver.Rosenbrock ~thin:5 ~t1:150. net
    in
    Molclock.Clock_analysis.period trace clk
  in
  let tab = Analysis.Table.create [ "phases"; "mass"; "period"; "period/phase" ] in
  List.iter
    (fun n ->
      match measure ~n_phases:n ~mass:100. with
      | Some p -> Analysis.Table.add_rowf tab "%d|%g|%.3f|%.3f" n 100. p (p /. float_of_int n)
      | None -> Analysis.Table.add_rowf tab "%d|%g|-|-" n 100.)
    [ 3; 4; 5; 6 ];
  List.iter
    (fun mass ->
      match measure ~n_phases:4 ~mass with
      | Some p -> Analysis.Table.add_rowf tab "%d|%g|%.3f|%.3f" 4 mass p (p /. 4.)
      | None -> Analysis.Table.add_rowf tab "%d|%g|-|-" 4 mass)
    [ 25.; 50.; 200.; 400. ];
  emit_table ~name:"ext2_clock_tuning" tab;
  print_endline
    "expected shape: the period grows linearly with phase count (one
     indicator-accumulation timescale per handover) and only weakly with
     clock mass (the bootstrap is zero-order in the phase species)."

(* -------------------------------------------------------------- driver *)

let experiments =
  [
    ("fig1", fig1_clock);
    ("fig2", fig2_chain);
    ("fig3", fig3_counter);
    ("fig4", fig4_filter);
    ("fig5", fig5_biquad);
    ("fig6", fig6_bode);
    ("tab1", tab1_rate_sweep);
    ("tab2", tab2_cost);
    ("tab3", tab3_dsd);
    ("tab4", tab4_sync_async);
    ("ext1", ext1_stochastic);
    ("ext2", ext2_clock_tuning);
    ("perf", perf);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as args) ->
        List.concat_map
          (function
            | "figs" -> [ "fig1"; "fig2"; "fig3"; "fig4"; "fig5"; "fig6" ]
            | "tabs" -> [ "tab1"; "tab2"; "tab3"; "tab4" ]
            | "exts" -> [ "ext1"; "ext2" ]
            | a -> [ a ])
          args
    | _ -> List.map fst experiments
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
          let te = Unix.gettimeofday () in
          f ();
          Printf.printf "[%s took %.1fs]\n%!" name (Unix.gettimeofday () -. te)
      | None ->
          Printf.eprintf "unknown experiment %S (have: %s)\n" name
            (String.concat ", " (List.map fst experiments)))
    requested;
  Printf.printf "\ntotal wall time: %.1fs\n" (Unix.gettimeofday () -. t0)
