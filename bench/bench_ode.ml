(* ODE engine benchmark: the CSR flat RHS/Jacobian kernel vs the retained
   boxed-record baseline (Deriv.Reference), plus multicore scaling of the
   deterministic sweep engine.

   Emits machine-readable BENCH_ode.json in the current directory so the
   perf trajectory is tracked PR over PR:

     dune exec bench/bench_ode.exe                       # full suite
     dune exec bench/bench_ode.exe -- --quick            # CI smoke
     dune exec bench/bench_ode.exe -- --out path.json    # explicit output

   JSON schema (mrsc-bench-ode/1):
     kernel.networks[]: per-network RHS and Jacobian evals/sec for the
       boxed baseline and the flat CSR kernel, and their ratio
       ("speedup"); both kernels are evaluated at the same
       mid-trajectory state and agree bitwise (asserted here and in the
       test suite);
     sweep: wall time for the same rate-robustness sweep at jobs=1 and
       jobs=4, the scaling ratio, and whether the results were
       byte-identical across job counts (they must be). *)

let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

(* run f in batches until [floor_s] of wall time is spent; returns
   (calls, wall) *)
let time_throughput ~floor_s ~batch f =
  let calls = ref 0 in
  let wall = ref 0. in
  while !wall < floor_s do
    let (), dt =
      time (fun () ->
          for _ = 1 to batch do
            f ()
          done)
    in
    calls := !calls + batch;
    wall := !wall +. dt
  done;
  (!calls, !wall)

type kernel_row = {
  network : string;
  n_species : int;
  n_reactions : int;
  jac_nnz : int;
  rhs_ref : float;  (* evals/sec *)
  rhs_csr : float;
  jac_ref : float;
  jac_csr : float;
}

let bench_kernel ~quick ~name build =
  let net = build () in
  let env = Crn.Rates.default_env in
  let sys = Ode.Deriv.compile env net in
  let refsys = Ode.Deriv.Reference.compile env net in
  let n = Ode.Deriv.dim sys in
  (* a mid-trajectory state, so fluxes are nonzero and representative *)
  let x =
    Ode.Driver.final_state ~method_:Ode.Driver.Rosenbrock ~env ~t1:5. net
  in
  let dx = Array.make n 0. in
  let dx' = Array.make n 0. in
  (* the two kernels must agree bitwise before we bother timing them *)
  Ode.Deriv.f sys 0. x dx;
  Ode.Deriv.Reference.f refsys 0. x dx';
  if dx <> dx' then failwith (name ^ ": CSR RHS disagrees with reference");
  let jac = Numeric.Mat.create n n 0. in
  Ode.Deriv.jacobian_into sys x jac;
  if jac <> Ode.Deriv.Reference.jacobian refsys x then
    failwith (name ^ ": CSR Jacobian disagrees with reference");
  let floor_s = if quick then 0.1 else 0.5 in
  let rhs_batch = 20_000 and jac_batch = 2_000 in
  let throughput ~batch f =
    let calls, wall = time_throughput ~floor_s ~batch f in
    float_of_int calls /. wall
  in
  (* warm up, then measure *)
  ignore (time_throughput ~floor_s:(floor_s /. 5.) ~batch:rhs_batch (fun () ->
      Ode.Deriv.f sys 0. x dx));
  let rhs_csr = throughput ~batch:rhs_batch (fun () -> Ode.Deriv.f sys 0. x dx) in
  let rhs_ref =
    throughput ~batch:rhs_batch (fun () -> Ode.Deriv.Reference.f refsys 0. x dx')
  in
  let jac_csr =
    throughput ~batch:jac_batch (fun () -> Ode.Deriv.jacobian_into sys x jac)
  in
  let jac_ref =
    throughput ~batch:jac_batch (fun () ->
        ignore (Ode.Deriv.Reference.jacobian refsys x))
  in
  let row =
    {
      network = name;
      n_species = n;
      n_reactions = Ode.Deriv.n_reactions sys;
      jac_nnz = Ode.Deriv.jac_nnz sys;
      rhs_ref;
      rhs_csr;
      jac_ref;
      jac_csr;
    }
  in
  Printf.printf
    "%-10s n=%-3d R=%-3d   RHS boxed %10.0f/s   flat %10.0f/s   speedup \
     %.2fx   | jac boxed %8.0f/s   in-place %8.0f/s   speedup %.2fx\n%!"
    name n row.n_reactions rhs_ref rhs_csr (rhs_csr /. rhs_ref) jac_ref jac_csr
    (jac_csr /. jac_ref);
  row

(* One scaling-matrix row: the same sweep at one requested job count.
   Requests are clamped to the hardware, so an oversubscribed request
   documents that clamping makes it harmless (its wall time matches the
   effective job count's). [efficiency] is scaling / jobs_effective. *)
type sweep_row = {
  s_network : string;
  s_t1 : float;
  points : int;
  cores : int;
  jobs_requested : int;
  jobs_effective : int;
  chunk : int;
  wall_1 : float;
  wall_j : float;
  scaling : float;
  efficiency : float;
  oversubscribed : bool;
  identical : bool;
}

let bench_sweep ~quick ~name build =
  let net = build () in
  let t1 = if quick then 10. else 40. in
  let n_points = if quick then 4 else 8 in
  let ratios =
    Array.init n_points (fun i -> 100. *. (1.3 ** float_of_int i))
  in
  let go ~jobs ~chunk =
    time (fun () -> Ode.Sweep.final_states ~jobs ~chunk ~t1 net ~ratios)
  in
  let cores = Numeric.Domain_pool.default_jobs () in
  ignore (go ~jobs:1 ~chunk:n_points) (* warm-up *);
  let f1, wall_1 = go ~jobs:1 ~chunk:n_points in
  let requests = List.sort_uniq compare [ 1; 2; cores; 2 * cores ] in
  List.map
    (fun jobs_requested ->
      let jobs_effective = min jobs_requested cores in
      let chunk = max 1 (n_points / (2 * max 1 jobs_effective)) in
      let fj, wall_j = go ~jobs:jobs_requested ~chunk in
      let identical = f1 = fj in
      let scaling = wall_1 /. wall_j in
      let efficiency = scaling /. float_of_int (max 1 jobs_effective) in
      Printf.printf
        "sweep %-10s %d points: jobs=%d (eff %d/%d cores, chunk %d) %.2fs   \
         scaling %.2fx   efficiency %.2f   identical=%b\n%!"
        name n_points jobs_requested jobs_effective cores chunk wall_j scaling
        efficiency identical;
      {
        s_network = name;
        s_t1 = t1;
        points = n_points;
        cores;
        jobs_requested;
        jobs_effective;
        chunk;
        wall_1;
        wall_j;
        scaling;
        efficiency;
        oversubscribed = jobs_requested > cores;
        identical;
      })
    requests

(* ------------------------------------------------------------- JSON *)

let json_kernel_row b r =
  Buffer.add_string b
    (Printf.sprintf
       "    {\"network\": %S, \"n_species\": %d, \"n_reactions\": %d, \
        \"jac_nnz\": %d,\n\
       \     \"rhs\": {\"baseline_evals_per_sec\": %.1f, \
        \"csr_evals_per_sec\": %.1f, \"speedup\": %.3f},\n\
       \     \"jacobian\": {\"baseline_evals_per_sec\": %.1f, \
        \"inplace_evals_per_sec\": %.1f, \"speedup\": %.3f}}"
       r.network r.n_species r.n_reactions r.jac_nnz r.rhs_ref r.rhs_csr
       (r.rhs_csr /. r.rhs_ref)
       r.jac_ref r.jac_csr
       (r.jac_csr /. r.jac_ref))

let json_sweep_row b r =
  Buffer.add_string b
    (Printf.sprintf
       "    {\"network\": %S, \"t1\": %g, \"points\": %d, \"cores\": %d,\n\
       \     \"jobs_requested\": %d, \"jobs_effective\": %d, \"chunk\": %d,\n\
       \     \"jobs_1_wall_s\": %.4f, \"wall_s\": %.4f, \"scaling\": %.3f,\n\
       \     \"efficiency\": %.3f, \"oversubscribed\": %b, \
        \"identical\": %b}"
       r.s_network r.s_t1 r.points r.cores r.jobs_requested r.jobs_effective
       r.chunk r.wall_1 r.wall_j r.scaling r.efficiency r.oversubscribed
       r.identical)

let write_json ~path kernel_rows sweep_rows =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"schema\": \"mrsc-bench-ode/2\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"recommended_domains\": %d,\n  \"host\": %s,\n"
       (Numeric.Domain_pool.default_jobs ())
       (Bench_host.json ()));
  Buffer.add_string b "  \"kernel\": {\"networks\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      json_kernel_row b r)
    kernel_rows;
  Buffer.add_string b "\n  ]},\n  \"sweep\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      json_sweep_row b r)
    sweep_rows;
  Buffer.add_string b "\n  ]\n}\n";
  let oc = open_out path in
  Buffer.output_buffer oc b;
  close_out oc;
  Printf.printf "wrote %s\n%!" path

(* minimal CLI: [quick]/[--quick] shrinks workloads for CI smoke;
   [--out PATH] overrides the JSON destination (CI passes it explicitly
   so artifacts land where the workflow expects them) *)
let parse_args () =
  let quick =
    Array.exists (fun a -> a = "quick" || a = "--quick") Sys.argv
  in
  let out = ref "BENCH_ode.json" in
  Array.iteri
    (fun i a ->
      if a = "--out" then
        if i + 1 < Array.length Sys.argv then out := Sys.argv.(i + 1)
        else begin
          prerr_endline "bench_ode: --out needs a path";
          exit 2
        end)
    Sys.argv;
  (quick, !out)

let () =
  let quick, out = parse_args () in
  let catalog = [ "clock4"; "counter2"; "counter3"; "biquad" ] in
  let kernel_rows =
    List.map
      (fun name ->
        bench_kernel ~quick ~name (fun () -> Designs.Catalog.build name))
      catalog
  in
  let sweep_rows =
    bench_sweep ~quick ~name:"clock4" (fun () ->
        Designs.Catalog.build "clock4")
  in
  write_json ~path:out kernel_rows sweep_rows;
  let bad = List.filter (fun r -> not r.identical) sweep_rows in
  if bad <> [] then begin
    prerr_endline "FAIL: parallel sweep not identical to sequential";
    exit 1
  end
