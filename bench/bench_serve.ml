(* Scale-out service benchmark: measured latency and throughput through
   the crnsgate gateway over live crnserved shard fleets.

   Emits machine-readable BENCH_serve.json so the serving layer's perf
   trajectory is tracked PR over PR:

     dune exec bench/bench_serve.exe -- --served PATH       # full suite
     dune exec bench/bench_serve.exe -- --smoke --served PATH
     dune exec bench/bench_serve.exe -- --out path.json ...

   --served points at the crnserved binary the gateway spawns (the
   gateway itself runs in-process on a separate domain). Five
   scenarios:

   scaling — closed-loop clients over a cache-miss-heavy workload (the
     same design at a never-repeating rate ratio, so every request
     compiles), measured against 1 shard and 2 shards with one worker
     domain each: the 2-vs-1 throughput ratio is what horizontal
     scale-out buys when the work cannot be cached. On a 1-core host
     the two shards time-slice and the ratio is ~1; the host block
     records that.

   affinity — a fixed set of sources sized to fit the fleet's caches
     only when consistent-hash routing pins each source to one shard
     (K sources, N shards, per-shard capacity K/N). The ratios are
     chosen, via the same Ring the gateway uses, so each shard owns
     exactly K/N of them — the cross-process determinism the ring
     guarantees. Against --no-affinity (uniform random routing) every
     shard sees all K sources, the LRU thrashes, and the p50 pays
     compile on most requests: the p50 ratio is what cache affinity
     buys. N = 4 shards keeps the random baseline's hit rate at ~1/4,
     well away from the 50% boundary that would make the p50 noisy.

   open_loop — a fixed arrival rate (scheduled arrivals, latency
     measured from the schedule so queueing delay is not hidden) over a
     mixed op workload: cached-model ODE requests, SSA runs at varying
     seeds, and an occasional never-seen ratio forcing a compile.
     Reports the p50/p95/p99 a client actually experiences.

   validate — a storm of exact-verification requests, half well-formed
     (catalog certify) and half carrying a network the exact tier
     rejects with a structured code. Both halves run inline on the
     shard event loop, so the recorded rejects/sec is what it costs to
     turn away a bad design: no pool worker, no simulation.

   restart — SIGKILL every shard of a warmed fleet, let the supervisor
     respawn them, and replay the warm set once. Run twice: without
     --state-dir every source pays synthesis + compile again (the cold
     restart storm); with it each respawned shard reloads its snapshot
     set at startup and the same replay is all cache hits. The cold/warm
     p50 ratio is what warm persistent state buys on restart. *)

let now = Unix.gettimeofday

(* ------------------------------------------------------------ fleet *)

type fleet = {
  stop : bool Atomic.t;
  domain : unit Domain.t;
  addr : Service.Addr.t;
}

let start_fleet ?state_dir ~served ~dir ~shards ~jobs_per_shard
    ~cache_capacity ~affinity () =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let sock = Filename.concat dir "gw.sock" in
  let cfg =
    {
      (Service.Gateway.default_config
         (Service.Gateway.Spawn
            {
              exe = served;
              count = shards;
              dir;
              jobs = Some jobs_per_shard;
              queue_bound = None;
              cache_capacity = Some cache_capacity;
              state_dir;
              extra_args = [];
            }))
      with
      Service.Gateway.wire = Some (Service.Addr.Unix_sock sock);
      affinity;
    }
  in
  let stop = Atomic.make false in
  let domain =
    Domain.spawn (fun () ->
        Service.Gateway.run ~stop:(fun () -> Atomic.get stop) cfg)
  in
  let addr = Service.Addr.Unix_sock sock in
  (* the gateway listens only after its shards accept; wait for ping *)
  let deadline = now () +. 30. in
  let rec wait () =
    match
      let c = Service.Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Service.Client.close c)
        (fun () ->
          Service.Client.call c
            (Service.Json.Obj [ ("op", Service.Json.str "ping") ]))
    with
    | _ -> ()
    | exception _ ->
        if now () > deadline then failwith "gateway did not come up";
        Unix.sleepf 0.1;
        wait ()
  in
  wait ();
  { stop; domain; addr }

let stop_fleet f =
  Atomic.set f.stop true;
  Domain.join f.domain

(* read summed fleet counters out of the gateway's stats fan-out *)
let fleet_counts f keys =
  let c = Service.Client.connect f.addr in
  Fun.protect
    ~finally:(fun () -> Service.Client.close c)
    (fun () ->
      let module J = Service.Json in
      let resp =
        Service.Client.call c (J.Obj [ ("op", J.str "stats") ])
      in
      let num key =
        Option.value ~default:0.
          (Option.bind
             (List.fold_left
                (fun acc k -> Option.bind acc (J.member k))
                (Some resp)
                [ "result"; "fleet"; key ])
             J.to_float)
      in
      List.map num keys)

let fleet_cache_counts f =
  match fleet_counts f [ "cache_hits"; "cache_misses" ] with
  | [ h; m ] -> (h, m)
  | _ -> assert false

(* -------------------------------------------------------- load loops *)

type measured = {
  latencies_ms : float array;  (* sorted *)
  wall_s : float;
  errors : int;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else
    sorted.(max 0 (min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1)))

let finish ~wall lats_per_client =
  let lats = Array.concat (List.map fst lats_per_client) in
  Array.sort compare lats;
  {
    latencies_ms = lats;
    wall_s = wall;
    errors = List.fold_left (fun a (_, e) -> a + e) 0 lats_per_client;
  }

(* closed loop: [clients] connections each firing the next request the
   moment the previous response lands *)
let closed_loop ~addr ~clients ~per_client ~make_req =
  let t0 = now () in
  let doms =
    List.init clients (fun ci ->
        Domain.spawn (fun () ->
            let c =
              Service.Client.connect ~retries:4 ~retry_budget_ms:10_000.
                ~retry_seed:(Int64.of_int (ci + 1)) addr
            in
            let errors = ref 0 in
            let lats =
              Array.init per_client (fun ri ->
                  let s = now () in
                  let resp = Service.Client.request c (make_req ci ri) in
                  if not resp.Service.Client.ok then incr errors;
                  (now () -. s) *. 1000.)
            in
            Service.Client.close c;
            (lats, !errors)))
  in
  let per = List.map Domain.join doms in
  finish ~wall:(now () -. t0) per

(* open loop: each client owns a fixed arrival schedule; latency is
   measured from the scheduled arrival, so time spent waiting behind a
   late predecessor counts (no coordinated omission) *)
let open_loop ~addr ~clients ~rate_rps ~duration_s ~make_req =
  let interval = float_of_int clients /. rate_rps in
  let per_client =
    int_of_float (duration_s /. interval)
  in
  let t0 = now () +. 0.05 in
  let doms =
    List.init clients (fun ci ->
        Domain.spawn (fun () ->
            let c =
              Service.Client.connect ~retries:4 ~retry_budget_ms:10_000.
                ~retry_seed:(Int64.of_int (ci + 1)) addr
            in
            let errors = ref 0 in
            let lats =
              Array.init per_client (fun ri ->
                  let scheduled =
                    t0
                    +. (float_of_int ri *. interval)
                    +. (float_of_int ci *. interval /. float_of_int clients)
                  in
                  let pause = scheduled -. now () in
                  if pause > 0. then Unix.sleepf pause;
                  let resp = Service.Client.request c (make_req ci ri) in
                  if not resp.Service.Client.ok then incr errors;
                  (now () -. scheduled) *. 1000.)
            in
            Service.Client.close c;
            (lats, !errors)))
  in
  let per = List.map Domain.join doms in
  finish ~wall:(now () -. t0) per

(* ---------------------------------------------------------- requests *)

module J = Service.Json

let ode_req ~design ~t1 ~ratio =
  J.Obj
    [
      ("op", J.str "ode");
      ("network", J.Obj [ ("catalog", J.str design) ]);
      ("t1", J.num t1);
      ("ratio", J.num ratio);
    ]

let ssa_req ?ratio ~design ~t1 ~seed () =
  J.Obj
    ([
       ("op", J.str "ssa");
       ("network", J.Obj [ ("catalog", J.str design) ]);
       ("t1", J.num t1);
       ("seed", J.int seed);
     ]
    @ match ratio with Some r -> [ ("ratio", J.num r) ] | None -> [])

(* validate ops: the exact-arithmetic certificate tier. Runs inline on
   the shard's event loop — never a pool worker, never a simulation. *)
let validate_certify_req ~design =
  J.Obj
    [
      ("op", J.str "validate");
      ("network", J.Obj [ ("catalog", J.str design) ]);
    ]

(* an inline network the rate-discipline check rejects: a slow
   annihilation (structured code slow_annihilation, wire code
   validation_failed) *)
let validate_reject_req () =
  J.Obj
    [
      ("op", J.str "validate");
      ( "network",
        J.Obj
          [
            ( "text",
              J.str "init X 10\ninit Y 10\nX + Y ->{slow} 0\n0 ->{slow} X\n"
            );
          ] );
    ]

(* ---------------------------------------------------------- scenarios *)

type row = {
  label : string;
  shards : int;
  clients : int;
  requests : int;
  wall_s : float;
  throughput_rps : float;
  p50 : float;
  p95 : float;
  p99 : float;
  errors : int;
}

let row ~label ~shards ~clients m =
  {
    label;
    shards;
    clients;
    requests = Array.length m.latencies_ms;
    wall_s = m.wall_s;
    throughput_rps = float_of_int (Array.length m.latencies_ms) /. m.wall_s;
    p50 = percentile m.latencies_ms 0.50;
    p95 = percentile m.latencies_ms 0.95;
    p99 = percentile m.latencies_ms 0.99;
    errors = m.errors;
  }

let report r =
  Printf.eprintf
    "%-22s %d shard(s), %d client(s): %d reqs in %.2fs = %.1f rps, p50 \
     %.1f ms, p95 %.1f ms, p99 %.1f ms%s\n%!"
    r.label r.shards r.clients r.requests r.wall_s r.throughput_rps r.p50
    r.p95 r.p99
    (if r.errors > 0 then Printf.sprintf " (%d errors)" r.errors else "")

(* never-repeating ratios: every request pays synthesis + compile on
   its shard, the workload horizontal scale-out parallelizes *)
let scenario_scaling ~served ~dirbase ~smoke =
  let design = "clock4" and t1 = 1.0 in
  let per_client = if smoke then 6 else 25 in
  let run shards =
    let dir = Printf.sprintf "%s/scale%d" dirbase shards in
    let fleet =
      start_fleet ~served ~dir ~shards ~jobs_per_shard:1 ~cache_capacity:32
        ~affinity:true ()
    in
    Fun.protect
      ~finally:(fun () -> stop_fleet fleet)
      (fun () ->
        let clients = 2 * shards in
        let m =
          closed_loop ~addr:fleet.addr ~clients ~per_client
            ~make_req:(fun ci ri ->
              (* ratio unique per (shards, client, request): never hits *)
              ode_req ~design ~t1
                ~ratio:
                  (float_of_int
                     (100_000 + (10_000 * shards) + (1_000 * ci) + ri)))
        in
        let r =
          row
            ~label:(Printf.sprintf "scaling/%d-shard" shards)
            ~shards ~clients m
        in
        report r;
        r)
  in
  let r1 = run 1 in
  let r2 = run 2 in
  (r1, r2, r2.throughput_rps /. r1.throughput_rps)

(* K sources over N shards with per-shard capacity K/N: fits only under
   ring routing. Ratios are picked so ownership is exactly balanced,
   using the same Ring + cache_key the gateway routes with. *)
let pick_balanced_ratios ~design ~shards ~per_shard =
  let net = Designs.Catalog.build design in
  let base = Crn.Equiv.cache_key net in
  let ring = Service.Ring.create (List.init shards (fun i -> i)) in
  let counts = Array.make shards 0 in
  let picked = ref [] in
  let r = ref 1_000. in
  while List.length !picked < shards * per_shard do
    let key = base ^ "@" ^ Printf.sprintf "%.17g" !r in
    (match Service.Ring.route ring key with
    | Some sid when counts.(sid) < per_shard ->
        counts.(sid) <- counts.(sid) + 1;
        picked := !r :: !picked
    | _ -> ());
    r := !r +. 1.
  done;
  Array.of_list (List.rev !picked)

let scenario_affinity ~served ~dirbase ~smoke =
  (* ma4 over SSA at a tiny horizon: a model-cache miss pays ~25 ms of
     synthesis + canonicalization + dual-engine compile, a hit runs in
     under a millisecond — the widest honest hit/miss contrast in the
     catalog, so the p50 ratio measures routing, not the workload *)
  let design = "ma4" and t1 = 0.05 in
  let shards = 4 and per_shard = 2 in
  let ratios = pick_balanced_ratios ~design ~shards ~per_shard in
  let k = Array.length ratios in
  let per_client = if smoke then 3 * k else 10 * k in
  let run ~affinity =
    let dir =
      Printf.sprintf "%s/affinity-%s" dirbase
        (if affinity then "ring" else "random")
    in
    let fleet =
      start_fleet ~served ~dir ~shards ~jobs_per_shard:1
        ~cache_capacity:per_shard ~affinity ()
    in
    Fun.protect
      ~finally:(fun () -> stop_fleet fleet)
      (fun () ->
        (* one client, one request in flight: the p50 ratio measures
           hit-vs-miss latency itself, undiluted by queueing — and so
           holds on any core count *)
        let clients = 1 in
        (* warm every source once so the affinity run measures steady
           state, not first-touch compiles *)
        let warm = Service.Client.connect fleet.addr in
        Array.iter
          (fun ratio ->
            ignore
              (Service.Client.call warm
                 (ssa_req ~ratio ~design ~t1 ~seed:3 ())))
          ratios;
        Service.Client.close warm;
        let m =
          closed_loop ~addr:fleet.addr ~clients ~per_client
            ~make_req:(fun ci ri ->
              ssa_req ~ratio:ratios.((ci + ri) mod k) ~design ~t1 ~seed:3 ())
        in
        let hits, misses = fleet_cache_counts fleet in
        let r =
          row
            ~label:
              (Printf.sprintf "affinity/%s"
                 (if affinity then "ring" else "random"))
            ~shards ~clients m
        in
        report r;
        Printf.eprintf "%-22s fleet cache: %.0f hits, %.0f misses\n%!" ""
          hits misses;
        (r, hits, misses))
  in
  let ring_row, ring_h, ring_m = run ~affinity:true in
  let rand_row, rand_h, rand_m = run ~affinity:false in
  (ring_row, rand_row, (ring_h, ring_m), (rand_h, rand_m), k, per_shard)

let scenario_open_loop ~served ~dirbase ~smoke =
  let rate_rps = if smoke then 20. else 40. in
  let duration_s = if smoke then 2. else 8. in
  let dir = Printf.sprintf "%s/open" dirbase in
  let fleet =
    start_fleet ~served ~dir ~shards:2 ~jobs_per_shard:1 ~cache_capacity:32
      ~affinity:true ()
  in
  Fun.protect
    ~finally:(fun () -> stop_fleet fleet)
    (fun () ->
      let clients = 4 in
      let m =
        open_loop ~addr:fleet.addr ~clients ~rate_rps ~duration_s
          ~make_req:(fun ci ri ->
            let n = (7 * ci) + ri in
            match n mod 10 with
            | 0 ->
                (* a cold model: synthesis + compile on arrival *)
                ode_req ~design:"clock3" ~t1:1.0
                  ~ratio:(float_of_int (200_000 + (1_000 * ci) + ri))
            | 1 | 2 ->
                ssa_req ~design:"counter2" ~t1:5.0 ~seed:(1 + n) ()
            | _ ->
                (* hot models cycling two cached ratios *)
                ode_req ~design:"clock4" ~t1:0.5
                  ~ratio:(if n mod 2 = 0 then 1_000. else 2_000.))
      in
      let r = row ~label:"open-loop/mixed" ~shards:2 ~clients m in
      report r;
      (r, rate_rps, duration_s))

(* validate-storm: a 1:1 mix of well-formed catalog validations and
   inline networks the exact tier rejects. Both halves run inline on
   the shard event loop, so throughput here is pure verification speed;
   a rejection arrives as a structured ok:false envelope, which is why
   the row's error count equals the reject count when the transport is
   healthy — the fleet's validate counters cross-check that. *)
let scenario_validate ~served ~dirbase ~smoke =
  let dir = Printf.sprintf "%s/validate" dirbase in
  let fleet =
    start_fleet ~served ~dir ~shards:2 ~jobs_per_shard:1 ~cache_capacity:8
      ~affinity:true ()
  in
  Fun.protect
    ~finally:(fun () -> stop_fleet fleet)
    (fun () ->
      let clients = 4 in
      let per_client = if smoke then 20 else 200 in
      let m =
        closed_loop ~addr:fleet.addr ~clients ~per_client
          ~make_req:(fun ci ri ->
            if (ci + ri) mod 2 = 0 then validate_certify_req ~design:"counter2"
            else validate_reject_req ())
      in
      let certified, rejected =
        match fleet_counts fleet [ "validate_ok"; "validate_reject" ] with
        | [ ok; rej ] -> (ok, rej)
        | _ -> assert false
      in
      let r = row ~label:"validate/storm" ~shards:2 ~clients m in
      report r;
      Printf.eprintf
        "%-22s fleet validate: %.0f certified, %.0f rejected (%.1f \
         rejects/s)\n%!"
        "" certified rejected
        (rejected /. m.wall_s);
      (r, certified, rejected))

(* restart-storm: SIGKILL every shard of a warmed fleet and replay the
   warm set once the supervisor has respawned them. Same design and
   horizon as the affinity scenario, so a miss pays ~25 ms of synthesis
   + compile and a hit runs in under a millisecond: the replay's p50 is
   compile cost without --state-dir and snapshot-hit cost with it. The
   respawn wait itself (backoff + process start) is polled out before
   the measured replay and reported separately — it is identical in
   both passes and would otherwise drown the contrast. *)
let scenario_restart ~served ~dirbase ~smoke =
  let design = "ma4" and t1 = 0.05 in
  let shards = 2 in
  let per_shard = if smoke then 3 else 8 in
  let ratios = pick_balanced_ratios ~design ~shards ~per_shard in
  let k = Array.length ratios in
  let run ~warm_state =
    let tag = if warm_state then "warm" else "cold" in
    let dir = Printf.sprintf "%s/restart-%s" dirbase tag in
    let state_dir =
      if warm_state then Some (Filename.concat dir "state") else None
    in
    let fleet =
      start_fleet ?state_dir ~served ~dir ~shards ~jobs_per_shard:1
        ~cache_capacity:per_shard ~affinity:true ()
    in
    Fun.protect
      ~finally:(fun () -> stop_fleet fleet)
      (fun () ->
        (* warm every source once; each shard now owns its ring slice *)
        let warm = Service.Client.connect fleet.addr in
        Array.iter
          (fun ratio ->
            ignore
              (Service.Client.call warm (ssa_req ~ratio ~design ~t1 ~seed:3 ())))
          ratios;
        Service.Client.close warm;
        (* snapshot writes happen off the request path; let them land *)
        Unix.sleepf 0.7;
        (* SIGKILL every shard of this fleet (argv carries the unique
           socket prefix); the supervisor respawns on its backoff ladder *)
        ignore
          (Sys.command
             (Printf.sprintf "pkill -9 -f %s 2>/dev/null"
                (Filename.quote (Filename.concat dir "shard-"))));
        (* poll source 0 until the fleet answers again: respawn wait,
           identical in both passes, excluded from the measured replay *)
        let t_kill = now () in
        let rec await () =
          let ok =
            match
              let c = Service.Client.connect fleet.addr in
              Fun.protect
                ~finally:(fun () -> Service.Client.close c)
                (fun () ->
                  Service.Client.request c
                    (ssa_req ~ratio:ratios.(0) ~design ~t1 ~seed:3 ()))
            with
            | resp -> resp.Service.Client.ok
            | exception _ -> false
          in
          if not ok then
            if now () -. t_kill > 30. then
              failwith "fleet did not recover after shard kill"
            else begin
              Unix.sleepf 0.05;
              await ()
            end
        in
        await ();
        let respawn_s = now () -. t_kill in
        (* the storm: one pass over the whole warm set, one request in
           flight — every latency is a first post-restart touch (source
           0 already re-touched by the poll, same in both passes) *)
        let m =
          closed_loop ~addr:fleet.addr ~clients:1 ~per_client:k
            ~make_req:(fun _ ri ->
              ssa_req ~ratio:ratios.(ri) ~design ~t1 ~seed:3 ())
        in
        let warm_loaded, hits, misses =
          match
            fleet_counts fleet [ "warm_loaded"; "cache_hits"; "cache_misses" ]
          with
          | [ w; h; mi ] -> (w, h, mi)
          | _ -> assert false
        in
        let r = row ~label:(Printf.sprintf "restart/%s" tag) ~shards ~clients:1 m in
        report r;
        Printf.eprintf
          "%-22s respawn wait %.2fs; fleet after replay: %.0f warm-loaded, \
           %.0f hits, %.0f misses\n%!"
          "" respawn_s warm_loaded hits misses;
        (r, respawn_s, warm_loaded, hits, misses))
  in
  let cold = run ~warm_state:false in
  let warm = run ~warm_state:true in
  (cold, warm, k)

(* ------------------------------------------------------------- output *)

let json_row b r =
  Buffer.add_string b
    (Printf.sprintf
       "{\"label\": %S, \"shards\": %d, \"clients\": %d, \"requests\": %d,\n\
       \       \"wall_s\": %.3f, \"throughput_rps\": %.2f, \"p50_ms\": \
        %.2f, \"p95_ms\": %.2f, \"p99_ms\": %.2f, \"errors\": %d}"
       r.label r.shards r.clients r.requests r.wall_s r.throughput_rps r.p50
       r.p95 r.p99 r.errors)

let write_json ~path ~smoke (r1, r2, scaling)
    (ring_row, rand_row, (ring_h, ring_m), (rand_h, rand_m), k, per_shard)
    (ol_row, rate, duration) (v_row, v_certified, v_rejected)
    ((cold_row, cold_wait, cold_wl, cold_h, cold_mi),
     (warm_row, warm_wait, warm_wl, warm_h, warm_mi),
     restart_sources) =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"schema\": \"mrsc-bench-serve/1\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"host\": %s,\n  \"smoke\": %b,\n" (Bench_host.json ())
       smoke);
  (* scale-out rows: the fleet's parallelism vs what the host can give *)
  Buffer.add_string b "  \"scaling\": {\n    \"workload\": \"cache-miss ode \
                       (unique ratio per request)\",\n    \"rows\": [\n";
  Buffer.add_string b "      ";
  json_row b r1;
  Buffer.add_string b ",\n      ";
  json_row b r2;
  Buffer.add_string b
    (Printf.sprintf
       "\n    ],\n    \"fleet_1\": %s,\n    \"fleet_2\": %s,\n    \
        \"throughput_scaling_2_over_1\": %.3f\n  },\n"
       (Bench_host.json ~jobs_requested:1 ())
       (Bench_host.json ~jobs_requested:2 ())
       scaling);
  Buffer.add_string b
    (Printf.sprintf
       "  \"affinity\": {\n    \"design\": \"ma4\", \"engine\": \"ssa\", \
        \"sources\": %d, \
        \"shards\": %d, \"cache_capacity_per_shard\": %d,\n    \"ring\": "
       k ring_row.shards per_shard);
  json_row b ring_row;
  Buffer.add_string b ",\n    \"random\": ";
  json_row b rand_row;
  Buffer.add_string b
    (Printf.sprintf
       ",\n    \"ring_cache\": {\"hits\": %.0f, \"misses\": %.0f},\n    \
        \"random_cache\": {\"hits\": %.0f, \"misses\": %.0f},\n    \
        \"p50_win\": %.2f\n  },\n"
       ring_h ring_m rand_h rand_m
       (rand_row.p50 /. ring_row.p50));
  Buffer.add_string b
    (Printf.sprintf
       "  \"open_loop\": {\"rate_rps\": %.1f, \"duration_s\": %.1f, \
        \"row\": "
       rate duration);
  json_row b ol_row;
  Buffer.add_string b "\n  },\n";
  Buffer.add_string b
    "  \"validate\": {\"mix\": \"1:1 certify:reject, inline exact tier\", \
     \"row\": ";
  json_row b v_row;
  Buffer.add_string b
    (Printf.sprintf
       ",\n    \"certified\": %.0f, \"rejected\": %.0f, \
        \"rejects_per_sec\": %.1f\n  },\n"
       v_certified v_rejected
       (v_rejected /. v_row.wall_s));
  Buffer.add_string b
    (Printf.sprintf
       "  \"restart\": {\n    \"workload\": \"SIGKILL all shards, replay \
        warm set after respawn\",\n    \"sources\": %d,\n    \"cold\": "
       restart_sources);
  json_row b cold_row;
  Buffer.add_string b ",\n    \"warm\": ";
  json_row b warm_row;
  Buffer.add_string b
    (Printf.sprintf
       ",\n    \"cold_respawn_wait_s\": %.2f, \"warm_respawn_wait_s\": \
        %.2f,\n    \"cold_fleet\": {\"warm_loaded\": %.0f, \"hits\": %.0f, \
        \"misses\": %.0f},\n    \"warm_fleet\": {\"warm_loaded\": %.0f, \
        \"hits\": %.0f, \"misses\": %.0f},\n    \"p50_win\": %.2f\n  }\n}\n"
       cold_wait warm_wait cold_wl cold_h cold_mi warm_wl warm_h warm_mi
       (cold_row.p50 /. warm_row.p50));
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc;
  Printf.eprintf "wrote %s\n%!" path

(* -------------------------------------------------------------- main *)

let () =
  let smoke =
    Array.exists (fun a -> a = "smoke" || a = "--smoke") Sys.argv
  in
  let out = ref "BENCH_serve.json" in
  let served = ref "crnserved" in
  Array.iteri
    (fun i a ->
      if a = "--out" && i + 1 < Array.length Sys.argv then
        out := Sys.argv.(i + 1)
      else if a = "--served" && i + 1 < Array.length Sys.argv then
        served := Sys.argv.(i + 1))
    Sys.argv;
  if not (Sys.file_exists !served) then begin
    Printf.eprintf
      "bench_serve: crnserved binary not found at %S (pass --served PATH)\n"
      !served;
    exit 2
  end;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let dirbase =
    Printf.sprintf "%s/mrsc-bench-serve-%d"
      (Filename.get_temp_dir_name ())
      (Unix.getpid ())
  in
  (try Unix.mkdir dirbase 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let served = !served in
  let scaling = scenario_scaling ~served ~dirbase ~smoke in
  let affinity = scenario_affinity ~served ~dirbase ~smoke in
  let ol = scenario_open_loop ~served ~dirbase ~smoke in
  let v = scenario_validate ~served ~dirbase ~smoke in
  let restart = scenario_restart ~served ~dirbase ~smoke in
  write_json ~path:!out ~smoke scaling affinity ol v restart
