(* Shared host stamp for the BENCH_*.json emitters.

   Every scaling number is meaningless without the hardware context it
   was measured on: a 2x claim on a 1-core host is time-slicing, not
   scaling. Each bench embeds this block so downstream tooling (and the
   CI gates) can tell a real measurement from an oversubscribed one
   without re-deriving the clamp logic per bench. *)

let cores () = Numeric.Domain_pool.default_jobs ()

(* [jobs_requested] is the parallelism the scenario asked for (total
   worker domains, or shards x per-shard jobs); omitted means "whatever
   the host recommends". *)
let json ?jobs_requested () =
  let cores = cores () in
  let requested = Option.value ~default:cores jobs_requested in
  let effective = min requested cores in
  Printf.sprintf
    "{\"cores\": %d, \"jobs_requested\": %d, \"jobs_effective\": %d, \
     \"oversubscribed\": %b}"
    cores requested effective (requested > cores)
