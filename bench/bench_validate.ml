(* Exact-verification micro-bench: certificate construction wall time
   for every catalog design (in-process, `Service.Verify.certify`), and
   the served `validate` op's single-client latency against the
   cheapest simulation op on the same daemon — the numbers behind the
   VERIFY table in EXPERIMENTS.md.

     dune exec bench/bench_validate.exe --            # full reps
     dune exec bench/bench_validate.exe -- --smoke
     dune exec bench/bench_validate.exe -- --out path.json

   Emits BENCH_validate.json. *)

let now = Unix.gettimeofday

(* -------------------------------------------------- in-process certify *)

type design_row = {
  name : string;
  cert_bytes : int;
  laws : int;
  clocks : int;
  certify_ms : float;
}

let count_prefix ~prefix text =
  List.length
    (List.filter
       (fun l -> String.length l >= String.length prefix
                 && String.sub l 0 (String.length prefix) = prefix)
       (String.split_on_char '\n' text))

let bench_design ~reps (e : Designs.Catalog.entry) =
  let net = e.build () in
  let cert = Service.Verify.certify ~title:e.name net in
  let text = Exact.Certificate.render cert in
  let t0 = now () in
  for _ = 1 to reps do
    ignore (Service.Verify.certify ~title:e.name net)
  done;
  let ms = (now () -. t0) /. float_of_int reps *. 1e3 in
  {
    name = e.name;
    cert_bytes = String.length text;
    laws = count_prefix ~prefix:"  law " text;
    clocks = count_prefix ~prefix:"  clock " text;
    certify_ms = ms;
  }

(* ------------------------------------------------------ served latency *)

module J = Service.Json

let percentile sorted q =
  let n = Array.length sorted in
  sorted.(max 0 (min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1)))

(* single client, one request in flight: p50 is op latency itself *)
let measure_op client ~reps req =
  ignore (Service.Client.request client req) (* warm: compile/cache *);
  let lats =
    Array.init reps (fun _ ->
        let s = now () in
        ignore (Service.Client.request client req);
        (now () -. s) *. 1e3)
  in
  Array.sort compare lats;
  percentile lats 0.50

let validate_req network =
  J.Obj [ ("op", J.str "validate"); ("network", network) ]

let served_latencies ~reps =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mrsc-bench-validate-%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink sock with _ -> ());
  let addr = Service.Addr.Unix_sock sock in
  let stop = Atomic.make false in
  let server =
    Domain.spawn (fun () ->
        Service.Server.run
          ~stop:(fun () -> Atomic.get stop)
          (Service.Server.default_config addr))
  in
  let rec wait_ready tries =
    match Service.Client.connect addr with
    | client -> client
    | exception Unix.Unix_error _ ->
        if tries = 0 then failwith "server did not come up";
        Unix.sleepf 0.02;
        wait_ready (tries - 1)
  in
  let client = wait_ready 250 in
  Fun.protect
    ~finally:(fun () ->
      Service.Client.close client;
      Atomic.set stop true;
      Domain.join server)
    (fun () ->
      let catalog d = J.Obj [ ("catalog", J.str d) ] in
      let certify =
        measure_op client ~reps (validate_req (catalog "counter2"))
      in
      let reject =
        measure_op client ~reps
          (validate_req
             (J.Obj
                [
                  ( "text",
                    J.str
                      "init X 10\ninit Y 10\nX + Y ->{slow} 0\n0 ->{slow} X\n"
                  );
                ]))
      in
      (* the cheapest simulation the daemon offers: a cached compiled
         ODE model integrated over a near-zero horizon — everything but
         the integration step is amortized away *)
      let sim =
        measure_op client ~reps
          (J.Obj
             [
               ("op", J.str "ode");
               ("network", catalog "counter2");
               ("t1", J.num 0.01);
               ("ratio", J.num 100.);
             ])
      in
      (certify, reject, sim))

(* -------------------------------------------------------------- main *)

let () =
  let smoke =
    Array.exists (fun a -> a = "smoke" || a = "--smoke") Sys.argv
  in
  let out = ref "BENCH_validate.json" in
  Array.iteri
    (fun i a ->
      if a = "--out" && i + 1 < Array.length Sys.argv then
        out := Sys.argv.(i + 1))
    Sys.argv;
  let reps = if smoke then 20 else 200 in
  let rows =
    List.map
      (fun e ->
        let r = bench_design ~reps e in
        Printf.eprintf
          "%-14s %4d B, %d laws, %d clocks, certify %.3f ms\n%!" r.name
          r.cert_bytes r.laws r.clocks r.certify_ms;
        r)
      (Designs.Catalog.all ())
  in
  let certify_p50, reject_p50, sim_p50 =
    served_latencies ~reps:(if smoke then 30 else 300)
  in
  Printf.eprintf
    "served p50: validate certify %.3f ms, validate reject %.3f ms, \
     cheapest sim (cached ode, t1=0.01) %.3f ms\n%!"
    certify_p50 reject_p50 sim_p50;
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"schema\": \"mrsc-bench-validate/1\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"host\": %s,\n  \"smoke\": %b,\n  \"reps\": %d,\n"
       (Bench_host.json ()) smoke reps);
  Buffer.add_string b "  \"designs\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": %S, \"cert_bytes\": %d, \"laws\": %d, \
            \"clocks\": %d, \"certify_ms\": %.4f}%s\n"
           r.name r.cert_bytes r.laws r.clocks r.certify_ms
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"served_p50_ms\": {\"validate_certify\": %.4f, \
        \"validate_reject\": %.4f, \"cheapest_sim\": %.4f,\n    \
        \"cheapest_sim_op\": \"ode counter2 t1=0.01 (cached model)\"}\n}\n"
       certify_p50 reject_p50 sim_p50);
  let oc = open_out !out in
  output_string oc (Buffer.contents b);
  close_out oc;
  Printf.eprintf "wrote %s\n%!" !out
