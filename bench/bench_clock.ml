(* Comparative clock-chassis sweep: frequency and robustness of every
   registered chassis across the fast/slow rate separation — the numbers
   behind the CLOCK table in EXPERIMENTS.md and the chassis-matrix gate
   in CI.

     dune exec bench/bench_clock.exe --            # full ratio grid
     dune exec bench/bench_clock.exe -- --smoke
     dune exec bench/bench_clock.exe -- --out path.json

   Emits BENCH_clock.json: per chassis, one row per swept ratio (period,
   sustained, worst non-adjacent overlap) plus the derived robustness
   threshold (the smallest ratio from which the clock stays clean) and
   the period at the reference ratio 1000. *)

let now = Unix.gettimeofday

let () =
  let smoke =
    Array.exists (fun a -> a = "smoke" || a = "--smoke") Sys.argv
  in
  let out = ref "BENCH_clock.json" in
  Array.iteri
    (fun i a ->
      if a = "--out" && i + 1 < Array.length Sys.argv then
        out := Sys.argv.(i + 1))
    Sys.argv;
  let ratios =
    if smoke then [| 50.; 300.; 1000. |]
    else [| 20.; 50.; 100.; 300.; 1000.; 3000.; 10000. |]
  in
  let t0 = now () in
  let sweeps = Molclock.Clock_analysis.chassis_sweep ~ratios () in
  let elapsed = now () -. t0 in
  let period_at ratio points =
    Array.fold_left
      (fun acc (p : Molclock.Clock_analysis.rate_point) ->
        if p.ratio = ratio then p.period else acc)
      None points
  in
  List.iter
    (fun (c : Molclock.Clock_analysis.chassis_point) ->
      let thr = Molclock.Clock_analysis.robustness_threshold c.points in
      Printf.eprintf "%-12s robustness threshold: %s\n%!" c.chassis
        (match thr with Some r -> Printf.sprintf "%g" r | None -> "none");
      Array.iter
        (fun (p : Molclock.Clock_analysis.rate_point) ->
          Printf.eprintf
            "  ratio %8g: sustained=%b period=%s overlap=%.4f\n%!" p.ratio
            p.sustained
            (match p.period with
            | Some x -> Printf.sprintf "%.3f" x
            | None -> "-")
            p.worst_overlap)
        c.points)
    sweeps;
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"schema\": \"mrsc-bench-clock/1\",\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"host\": %s,\n  \"smoke\": %b,\n  \"sweep_s\": %.2f,\n"
       (Bench_host.json ()) smoke elapsed);
  Buffer.add_string b "  \"chassis\": [\n";
  List.iteri
    (fun ci (c : Molclock.Clock_analysis.chassis_point) ->
      let thr = Molclock.Clock_analysis.robustness_threshold c.points in
      Buffer.add_string b
        (Printf.sprintf "    {\"name\": %S,\n     \"points\": [\n" c.chassis);
      Array.iteri
        (fun i (p : Molclock.Clock_analysis.rate_point) ->
          Buffer.add_string b
            (Printf.sprintf
               "       {\"ratio\": %g, \"sustained\": %b, \"period\": %s, \
                \"worst_overlap\": %.6f}%s\n"
               p.ratio p.sustained
               (match p.period with
               | Some x -> Printf.sprintf "%.6f" x
               | None -> "null")
               p.worst_overlap
               (if i = Array.length c.points - 1 then "" else ",")))
        c.points;
      Buffer.add_string b
        (Printf.sprintf
           "     ],\n     \"robustness_threshold\": %s,\n     \
            \"period_at_1000\": %s}%s\n"
           (match thr with
           | Some r -> Printf.sprintf "%g" r
           | None -> "null")
           (match period_at 1000. c.points with
           | Some p -> Printf.sprintf "%.6f" p
           | None -> "null")
           (if ci = List.length sweeps - 1 then "" else ",")))
    sweeps;
  Buffer.add_string b "  ]\n}\n";
  let oc = open_out !out in
  output_string oc (Buffer.contents b);
  close_out oc;
  Printf.eprintf "wrote %s\n%!" !out
